// Simulator throughput (ISSUE: de-mapified hot loop + parallel harness).
//
// Two measurements, both emitted to BENCH_sweep.json:
//
//  1. Per-event cost of the discrete-event core: Simulator::run() wall
//     clock divided by SimReport::events_processed, for the three
//     sharing regimes on a contended 12-task workload.  This is the
//     number the job-slab rewrite (dense vector indexed by JobId,
//     stamp-based dispatch dedup, O(1) per-job CPU index) moves.
//
//  2. Harness speedup: an identical fig09-shaped run_series_batch grid
//     executed on a 1-thread pool and an N-thread pool, with the
//     reduced SeriesPoints compared field-by-field — the binary fails
//     if parallel execution changes any result, so the determinism
//     guarantee is enforced in production, not just in tests.
//
// Usage: sim_throughput [--tiny] [--threads=N] [--out FILE]
//   --tiny     smoke mode for check.sh: small grids, few samples
//   --threads  parallel pool width for the harness comparison
//              (default: bench::init's resolution of LFRT_THREADS)
//   --out      JSON output path (default BENCH_sweep.json in the cwd)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common.hpp"

namespace {

using namespace lfrt;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration_cast<
             std::chrono::duration<double, std::milli>>(Clock::now() - t0)
      .count();
}

struct EventRow {
  std::string mode;
  std::int64_t events = 0;
  double ns_per_event = 0;
};

/// Median ns/event over `samples` fresh runs of one workload+mode.
EventRow measure_events(const TaskSet& ts, sim::ShareMode mode,
                        int samples) {
  std::vector<double> per_event;
  std::int64_t events = 0;
  for (int s = 0; s < samples; ++s) {
    sim::SimConfig cfg;
    cfg.mode = mode;
    cfg.lock_access_time = bench::kDefaultR;
    cfg.lockfree_access_time = bench::kDefaultS;
    cfg.sched_ns_per_op = bench::kDefaultNsPerOp;
    Time max_window = 0;
    for (const auto& t : ts.tasks)
      max_window = std::max(max_window, t.arrival.window);
    cfg.horizon = max_window * 200;
    sim::Simulator sim(ts, bench::scheduler_for(mode), cfg);
    sim.seed_arrivals(33);
    const auto t0 = Clock::now();
    const sim::SimReport rep = sim.run();
    const double ns = ms_since(t0) * 1e6;
    events = rep.events_processed;
    per_event.push_back(events > 0 ? ns / static_cast<double>(events) : 0);
  }
  std::sort(per_event.begin(), per_event.end());
  return {sim::to_string(mode), events, per_event[per_event.size() / 2]};
}

bool same_points(const std::vector<bench::SeriesPoint>& a,
                 const std::vector<bench::SeriesPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].aur_mean != b[i].aur_mean || a[i].aur_ci != b[i].aur_ci ||
        a[i].cmr_mean != b[i].cmr_mean || a[i].cmr_ci != b[i].cmr_ci ||
        a[i].retries_per_job != b[i].retries_per_job ||
        a[i].blockings_per_job != b[i].blockings_per_job ||
        a[i].jobs != b[i].jobs || a[i].aborted != b[i].aborted ||
        a[i].deadlocks != b[i].deadlocks ||
        a[i].sched_invocations != b[i].sched_invocations ||
        a[i].sched_ops != b[i].sched_ops ||
        a[i].sched_overhead != b[i].sched_overhead)
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lfrt;
  bench::init(argc, argv);
  bool tiny = false;
  std::string out_path = "BENCH_sweep.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) {
      tiny = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strncmp(argv[i], "--threads", 9) == 0) {
      if (std::strchr(argv[i], '=') == nullptr && i + 1 < argc) ++i;
    } else {
      std::cerr << "usage: sim_throughput [--tiny] [--threads=N] "
                   "[--out FILE]\n";
      return 2;
    }
  }
  bench::print_header("Throughput", "simulator per-event cost + harness "
                                    "parallel speedup");

  // ---- 1. per-event cost of the discrete-event core -------------------
  workload::WorkloadSpec spec;
  spec.task_count = 12;
  spec.object_count = 6;
  spec.accesses_per_job = 3;
  spec.avg_exec = usec(200);
  spec.load = 0.9;
  spec.seed = 11;
  const TaskSet ts = workload::make_task_set(spec);

  const int samples = tiny ? 2 : 7;
  std::vector<EventRow> event_rows;
  std::cout << "per-event cost (12 tasks, 6 objects, AL=0.9):\n"
            << "  mode         events   ns/event\n";
  for (const sim::ShareMode mode :
       {sim::ShareMode::kLockFree, sim::ShareMode::kLockBased,
        sim::ShareMode::kIdeal}) {
    const EventRow row = measure_events(ts, mode, samples);
    event_rows.push_back(row);
    std::printf("  %-11s %7lld %10.1f\n", row.mode.c_str(),
                static_cast<long long>(row.events), row.ns_per_event);
  }

  // ---- 2. harness speedup: identical grid, 1 vs N threads -------------
  const int n_threads = static_cast<int>(bench::pool().size());
  std::vector<bench::SeriesSpec> series;
  for (const double load : tiny ? std::vector<double>{0.6, 1.0}
                                : std::vector<double>{0.4, 0.7, 1.0, 1.3}) {
    workload::WorkloadSpec ws;
    ws.task_count = 10;
    ws.object_count = 10;
    ws.accesses_per_job = 2;
    ws.avg_exec = usec(100);
    ws.load = load;
    ws.tuf_class = workload::TufClass::kStep;
    ws.seed = 42;
    bench::SeriesSpec s;
    s.ts = workload::make_task_set(ws);
    s.rp.mode = sim::ShareMode::kLockFree;
    s.rp.repeats = tiny ? 2 : 6;
    series.push_back(std::move(s));
  }

  exp::ThreadPool serial_pool(1);
  const auto t_serial = Clock::now();
  const auto serial = bench::run_series_batch(serial_pool, series);
  const double serial_ms = ms_since(t_serial);

  exp::ThreadPool wide_pool(n_threads);
  const auto t_wide = Clock::now();
  const auto wide = bench::run_series_batch(wide_pool, series);
  const double wide_ms = ms_since(t_wide);

  const bool identical = same_points(serial, wide);
  const double speedup = wide_ms > 0 ? serial_ms / wide_ms : 0;

  std::printf("\nharness grid (%zu series x %d repeats):\n",
              series.size(), series.front().rp.repeats);
  std::printf("  1 thread   %8.1f ms\n", serial_ms);
  std::printf("  %d thread%s %8.1f ms   speedup %.2fx   results %s\n",
              n_threads, n_threads == 1 ? " " : "s", wide_ms, speedup,
              identical ? "identical" : "DIVERGED");
  if (!identical) {
    std::cerr << "error: parallel results differ from serial results\n";
    return 1;
  }

  std::ofstream os(out_path);
  os << "{\n  \"bench\": \"sim_throughput\",\n  \"events\": [\n";
  for (std::size_t i = 0; i < event_rows.size(); ++i) {
    const EventRow& r = event_rows[i];
    os << "    {\"mode\": \"" << r.mode << "\", \"events\": " << r.events
       << ", \"ns_per_event\": " << r.ns_per_event << "}"
       << (i + 1 < event_rows.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"harness\": {\"threads\": " << n_threads
     << ", \"serial_ms\": " << serial_ms << ", \"parallel_ms\": " << wide_ms
     << ", \"speedup\": " << speedup << ", \"identical\": "
     << (identical ? "true" : "false") << "}\n}\n";
  if (!os) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
