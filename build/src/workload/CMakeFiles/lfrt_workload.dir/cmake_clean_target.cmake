file(REMOVE_RECURSE
  "liblfrt_workload.a"
)
