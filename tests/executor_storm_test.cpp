// Abort storms: jobs whose critical times expire while they are
// mid-access to shared objects.  The executor must raise JobAborted at
// a checkpoint, run the abort handler (which undoes the half-done
// access), and account everything — with zero nodes leaked from the
// lock-free pool and a RunReport whose tallies are internally
// consistent.  Runs under ASan and TSan in scripts/check.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "lockbased/mutex_queue.hpp"
#include "lockfree/msqueue.hpp"
#include "rt/executor.hpp"
#include "sched/rua.hpp"

namespace lfrt {
namespace {

void spin_past(rt::JobContext& ctx, Time total) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(total);
  while (std::chrono::steady_clock::now() < deadline) {
    ctx.checkpoint();
    std::this_thread::yield();
  }
}

void check_report_consistency(const rt::ExecutorReport& rep) {
  EXPECT_EQ(rep.completed + rep.aborted, rep.submitted);
  EXPECT_EQ(rep.counted_jobs, rep.submitted);
  EXPECT_EQ(static_cast<std::int64_t>(rep.jobs.size()), rep.submitted);
  std::int64_t retries = 0, blockings = 0, completed = 0, aborted = 0;
  double utility = 0.0;
  for (const Job& j : rep.jobs) {
    retries += j.retries;
    blockings += j.blockings;
    if (j.state == JobState::kCompleted) {
      ++completed;
      EXPECT_GE(j.completion, j.arrival);
    } else {
      ASSERT_EQ(j.state, JobState::kAborted);
      ++aborted;
      EXPECT_EQ(j.completion, -1);  // an aborted job never completes
    }
  }
  EXPECT_EQ(retries, rep.total_retries);
  EXPECT_EQ(blockings, rep.total_blockings);
  EXPECT_EQ(completed, rep.completed);
  EXPECT_EQ(aborted, rep.aborted);
  EXPECT_GE(rep.max_possible_utility, rep.accrued_utility);
  utility = rep.accrued_utility;
  EXPECT_GE(utility, 0.0);
}

/// After the storm the pool must hold exactly `capacity` free nodes:
/// drain what survived, then a full refill must succeed and the
/// (capacity+1)-th enqueue must hit pool exhaustion.
void check_no_leaked_nodes(lockfree::MsQueue<int>& q, std::size_t capacity) {
  while (q.dequeue()) {
  }
  for (std::size_t i = 0; i < capacity; ++i)
    ASSERT_TRUE(q.enqueue(static_cast<int>(i))) << "node leaked: refill "
                                                   "stalled at "
                                                << i << "/" << capacity;
  EXPECT_FALSE(q.enqueue(-1)) << "pool grew? capacity check broken";
  while (q.dequeue()) {
  }
}

void run_lockfree_abort_storm(int cpu_count) {
  constexpr std::size_t kCapacity = 64;
  auto q = std::make_shared<lockfree::MsQueue<int>>(kCapacity);
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  rt::ExecutorReport rep;
  {
    rt::Executor ex(rua, rt::ExecutorConfig{cpu_count});
    for (int i = 0; i < 24; ++i) {
      rt::RtJob job;
      const bool doomed = (i % 2 == 0);
      // Doomed jobs get a critical time far shorter than their spin;
      // the abort lands between their enqueue and their dequeue.
      job.tuf = make_step_tuf(10.0 + i, doomed ? usec(300) : msec(200));
      job.expected_exec = usec(doomed ? 50 : 100);
      auto pending = std::make_shared<std::atomic<int>>(0);
      job.body = [q, pending, i, doomed](rt::JobContext& ctx) {
        if (q->enqueue(i)) pending->fetch_add(1);
        spin_past(ctx, doomed ? msec(5) : usec(100));
        if (q->dequeue()) pending->fetch_sub(1);
        ctx.checkpoint();
      };
      job.abort_handler = [q, pending] {
        // Compensation: remove what the half-done body left behind.
        while (pending->load() > 0) {
          if (q->dequeue())
            pending->fetch_sub(1);
          else
            break;
        }
      };
      ex.submit(std::move(job));
    }
    rep = ex.shutdown();
  }

  EXPECT_EQ(rep.submitted, 24);
  EXPECT_GT(rep.aborted, 0) << "storm failed to abort anything";
  EXPECT_GT(rep.completed, 0) << "storm aborted everything";
  EXPECT_EQ(rep.cpu_count, cpu_count);
  ASSERT_EQ(static_cast<int>(rep.cpu_busy.size()), cpu_count);
  check_report_consistency(rep);
  check_no_leaked_nodes(*q, kCapacity);
}

TEST(ExecutorStorm, LockFreeAbortMidAccessLeaksNothing) {
  run_lockfree_abort_storm(1);
}

// The same storm with four workers genuinely overlapping: aborts,
// compensation, and pool recycling must stay leak-free when lock-free
// conflicts come from true parallelism, not just preemption.
TEST(ExecutorStorm, LockFreeAbortStormWithParallelWorkers) {
  run_lockfree_abort_storm(4);
}

TEST(ExecutorStorm, LockBasedAbortMidAccessStaysConsistent) {
  auto q = std::make_shared<lockbased::MutexQueue<int>>();
  const sched::RuaScheduler rua(sched::Sharing::kLockBased);
  rt::ExecutorReport rep;
  {
    rt::Executor ex(rua);
    for (int i = 0; i < 16; ++i) {
      rt::RtJob job;
      const bool doomed = (i % 2 == 0);
      job.tuf = make_linear_tuf(20.0 + i, doomed ? usec(300) : msec(200));
      job.expected_exec = usec(doomed ? 50 : 100);
      auto pending = std::make_shared<std::atomic<int>>(0);
      job.body = [q, pending, i, doomed](rt::JobContext& ctx) {
        q->enqueue(i);
        pending->fetch_add(1);
        spin_past(ctx, doomed ? msec(5) : usec(100));
        if (q->dequeue()) pending->fetch_sub(1);
        ctx.checkpoint();
      };
      job.abort_handler = [q, pending] {
        while (pending->load() > 0 && q->dequeue()) pending->fetch_sub(1);
      };
      ex.submit(std::move(job));
    }
    rep = ex.shutdown();
  }

  EXPECT_EQ(rep.submitted, 16);
  EXPECT_GT(rep.aborted, 0);
  check_report_consistency(rep);
  // Every abort handler drained its own leftovers.
  EXPECT_FALSE(q->dequeue().has_value());
  // The mutex queue reported its acquisitions through ObjectStats.
  EXPECT_GT(q->stats().acquisition_count(), 0);
  EXPECT_GT(q->stats().op_count(), 0);
}

/// Aborts raised while a worker is inside the structure itself (not at
/// a checkpoint) cannot happen — checkpoints are the only abort points —
/// so a body that never checkpoints inside its access region completes
/// the access atomically with respect to aborts.  This pins that
/// contract: the storm's integrity argument depends on it.
TEST(ExecutorStorm, AccessRegionsWithoutCheckpointsFinishBeforeAbort) {
  auto q = std::make_shared<lockfree::MsQueue<int>>(8);
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  rt::ExecutorReport rep;
  std::atomic<int> started{0}, balanced{0};
  {
    rt::Executor ex(rua);
    for (int i = 0; i < 6; ++i) {
      rt::RtJob job;
      // Generous critical time so at least the first body starts even
      // under TSan's slowdown; the spin below still overruns it.
      job.tuf = make_step_tuf(5.0, msec(10 * (i + 1)));
      job.expected_exec = usec(50);
      job.body = [q, &started, &balanced, i](rt::JobContext& ctx) {
        // enqueue+dequeue pair with no checkpoint between them: for
        // every body that starts, the pair fully happens.  (A job
        // aborted before first dispatch never starts its body at all.)
        started.fetch_add(1);
        if (q->enqueue(i)) {
          q->dequeue();
          balanced.fetch_add(1);
        }
        spin_past(ctx, msec(80));  // aborts land here
      };
      ex.submit(std::move(job));
    }
    rep = ex.shutdown();
  }
  check_report_consistency(rep);
  EXPECT_TRUE(q->empty());
  EXPECT_GT(started.load(), 0);
  EXPECT_EQ(balanced.load(), started.load());
}

/// With several workers inside the same lock-free queue simultaneously
/// (plus cooperative preemptions parking workers mid-access), every
/// structure-level retry must be credited to exactly the job that
/// performed it: the per-job sums must equal the structure's own
/// counter to the event.  A mis-placed ScopedAccessSink re-install —
/// e.g. dropping the sink across a park/resume — would break the
/// equality, since the queue is touched by no thread without a sink.
TEST(ExecutorStorm, ParallelWorkersCreditRetriesToOwnJobs) {
  constexpr int kJobs = 6;
  constexpr int kCpus = 2;
  auto q = std::make_shared<lockfree::MsQueue<int>>(256);
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  std::atomic<int> in_body{0};
  std::atomic<int> peak{0};
  rt::ExecutorReport rep;
  {
    rt::Executor ex(rua, rt::ExecutorConfig{kCpus});
    for (int i = 0; i < kJobs; ++i) {
      rt::RtJob job;
      job.tuf = make_step_tuf(10.0 + i, sec(20));  // generous: no aborts
      job.expected_exec = msec(1);
      job.body = [q, &in_body, &peak, i](rt::JobContext& ctx) {
        const int level = in_body.fetch_add(1) + 1;
        int p = peak.load();
        while (p < level && !peak.compare_exchange_weak(p, level)) {
        }
        // Rendezvous: hold until two bodies have overlapped, so the
        // hammer below is guaranteed to contend across real threads.
        // With kCpus >= 2 and every job ready, the dispatcher fills
        // both slots, so this terminates deterministically.
        while (peak.load() < 2) {
          ctx.checkpoint();
          std::this_thread::yield();
        }
        for (int k = 0; k < 2000; ++k) {
          while (!q->enqueue(i)) std::this_thread::yield();
          // A preemption/abort point in the middle of the access pair:
          // a parked worker must keep its credits on resume.
          if (k % 64 == 0) ctx.checkpoint();
          while (!q->dequeue()) std::this_thread::yield();
        }
        in_body.fetch_sub(1);
      };
      ex.submit(std::move(job));
    }
    rep = ex.shutdown();
  }
  EXPECT_EQ(rep.completed, kJobs);
  EXPECT_EQ(rep.cpu_count, kCpus);
  EXPECT_GE(rep.max_concurrency_observed, 2);
  EXPECT_GE(peak.load(), 2);
  check_report_consistency(rep);
  // The attribution invariant: per-job credited retries add up to
  // exactly what the structure itself recorded.
  EXPECT_EQ(rep.total_retries, q->stats().retry_count());
  EXPECT_TRUE(q->empty());
}

}  // namespace
}  // namespace lfrt
