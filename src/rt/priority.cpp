#include "rt/priority.hpp"

#include <pthread.h>
#include <sched.h>

namespace lfrt::rt {

bool set_realtime_priority(int priority) {
  sched_param sp{};
  sp.sched_priority = priority;
  return pthread_setschedparam(pthread_self(), SCHED_FIFO, &sp) == 0;
}

bool pin_to_cpu(int cpu) {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

}  // namespace lfrt::rt
