# Empty dependencies file for lfrt_rt.
# This may be replaced when dependencies are built.
