file(REMOVE_RECURSE
  "../bench/ablation_deadlock"
  "../bench/ablation_deadlock.pdb"
  "CMakeFiles/ablation_deadlock.dir/ablation_deadlock.cpp.o"
  "CMakeFiles/ablation_deadlock.dir/ablation_deadlock.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_deadlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
