# Empty compiler generated dependencies file for ext_multiprocessor.
# This may be replaced when dependencies are built.
