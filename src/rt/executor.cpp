#include "rt/executor.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/scheduler.hpp"
#include "support/check.hpp"

namespace lfrt::rt {
namespace {

using Clock = std::chrono::steady_clock;

enum class RtState : std::uint8_t {
  kReady,      // submitted, waiting for its first dispatch
  kRunning,    // the dispatched job (its worker owns the CPU)
  kPreempted,  // parked inside checkpoint()
  kAborting,   // abort requested; body will throw at its next checkpoint
  kCompleted,
  kAborted,
};

bool terminal(RtState s) {
  return s == RtState::kCompleted || s == RtState::kAborted;
}

}  // namespace

struct Executor::Impl {
  struct JobRec;

  const sched::Scheduler* scheduler;
  Clock::time_point epoch = Clock::now();

  std::mutex mu;
  std::condition_variable sched_cv;    // wakes the scheduling thread
  std::condition_variable worker_cv;   // wakes parked workers
  std::map<JobId, std::unique_ptr<JobRec>> jobs;
  JobId next_id = 0;
  JobId dispatched = kNoJob;
  bool stopping = false;
  ExecutorReport report;
  std::thread sched_thread;

  struct JobRec final : public JobContext {
    Impl* owner = nullptr;
    JobId jid = kNoJob;
    RtJob spec;
    Time arrival = 0;        // ns since epoch
    Time critical_abs = 0;
    RtState state = RtState::kReady;
    Time ran_for = 0;        // accumulated execution time estimate input
    Time last_dispatch = 0;  // when it last got the CPU
    Time completion = -1;
    std::thread worker;

    // --- JobContext ---
    void checkpoint() override {
      std::unique_lock<std::mutex> lock(owner->mu);
      if (state == RtState::kAborting) throw JobAborted{};
      if (owner->dispatched == jid) return;  // still ours: keep going
      // Preempted: account the stint and park.
      state = RtState::kPreempted;
      owner->sched_cv.notify_all();
      owner->worker_cv.wait(lock, [&] {
        return owner->dispatched == jid || state == RtState::kAborting;
      });
      if (state == RtState::kAborting) throw JobAborted{};
      state = RtState::kRunning;
    }

    bool aborted() const override {
      std::lock_guard<std::mutex> lock(owner->mu);
      return state == RtState::kAborting;
    }

    JobId id() const override { return jid; }
  };

  explicit Impl(const sched::Scheduler& sch) : scheduler(&sch) {
    sched_thread = std::thread([this] { scheduler_loop(); });
  }

  Time now() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - epoch)
        .count();
  }

  JobId submit(RtJob job) {
    LFRT_CHECK_MSG(job.tuf != nullptr, "job needs a TUF");
    LFRT_CHECK_MSG(job.body != nullptr, "job needs a body");
    LFRT_CHECK_MSG(job.expected_exec > 0, "job needs an execution estimate");
    std::unique_lock<std::mutex> lock(mu);
    const JobId id = next_id++;
    auto rec = std::make_unique<JobRec>();
    JobRec* r = rec.get();
    r->owner = this;
    r->jid = id;
    r->spec = std::move(job);
    r->arrival = now();
    r->critical_abs = r->arrival + r->spec.tuf->critical_time();
    ++report.submitted;
    report.max_possible_utility += r->spec.tuf->utility(0);
    jobs.emplace(id, std::move(rec));
    r->worker = std::thread([this, r] { worker_main(r); });
    sched_cv.notify_all();
    return id;
  }

  void worker_main(JobRec* r) {
    {
      // Wait for the first dispatch (or an abort before ever running).
      std::unique_lock<std::mutex> lock(mu);
      worker_cv.wait(lock, [&] {
        return dispatched == r->jid || r->state == RtState::kAborting;
      });
      if (r->state != RtState::kAborting) r->state = RtState::kRunning;
    }
    bool completed = false;
    try {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (r->state == RtState::kAborting) throw JobAborted{};
      }
      r->spec.body(*r);
      completed = true;
    } catch (const JobAborted&) {
      if (r->spec.abort_handler) r->spec.abort_handler();
    }
    std::unique_lock<std::mutex> lock(mu);
    if (completed) {
      r->state = RtState::kCompleted;
      r->completion = now();
      ++report.completed;
      report.accrued_utility +=
          r->spec.tuf->utility(r->completion - r->arrival);
    } else {
      r->state = RtState::kAborted;
      ++report.aborted;
    }
    if (dispatched == r->jid) dispatched = kNoJob;
    sched_cv.notify_all();
  }

  void scheduler_loop() {
    std::unique_lock<std::mutex> lock(mu);
    // Reused across scheduling passes so the loop's steady state stays
    // off the allocator (same contract as the simulator's hot path).
    const auto ws = scheduler->make_workspace();
    sched::ScheduleResult res;
    std::vector<sched::SchedJob> view;
    while (true) {
      const Time t = now();

      // Raise abort-exceptions for expired jobs (the timer going off).
      for (auto& [id, r] : jobs) {
        if (terminal(r->state) || r->state == RtState::kAborting) continue;
        if (t >= r->critical_abs) {
          r->state = RtState::kAborting;
          if (dispatched == id) dispatched = kNoJob;
          worker_cv.notify_all();  // parked workers observe and throw
        }
      }

      // Build the scheduler view over pending jobs.
      view.clear();
      for (auto& [id, r] : jobs) {
        if (terminal(r->state) || r->state == RtState::kAborting) continue;
        sched::SchedJob sj;
        sj.id = id;
        sj.arrival = r->arrival;
        sj.critical = r->critical_abs;
        Time elapsed = r->ran_for;
        if (dispatched == id) elapsed += t - r->last_dispatch;
        sj.remaining = std::max<Time>(1, r->spec.expected_exec - elapsed);
        sj.tuf = r->spec.tuf.get();
        view.push_back(sj);
      }

      if (stopping && view.empty()) return;

      scheduler->build_into(view, t, ws.get(), res);
      if (res.dispatch != dispatched) {
        // Account the descheduled job's stint.
        if (dispatched != kNoJob) {
          auto it = jobs.find(dispatched);
          if (it != jobs.end())
            it->second->ran_for += t - it->second->last_dispatch;
        }
        dispatched = res.dispatch;
        if (dispatched != kNoJob) {
          jobs.at(dispatched)->last_dispatch = t;
          ++report.dispatches;
        }
        worker_cv.notify_all();
      }

      // Sleep until the next critical time (abort timer) or any event.
      Time next_expiry = kTimeNever;
      for (auto& [id, r] : jobs) {
        if (terminal(r->state) || r->state == RtState::kAborting) continue;
        next_expiry = std::min(next_expiry, r->critical_abs);
      }
      if (next_expiry == kTimeNever) {
        sched_cv.wait(lock);
      } else {
        sched_cv.wait_until(
            lock, epoch + std::chrono::nanoseconds(next_expiry));
      }
    }
  }

  void drain() {
    std::unique_lock<std::mutex> lock(mu);
    sched_cv.wait(lock, [&] {
      return std::all_of(jobs.begin(), jobs.end(), [](const auto& kv) {
        return terminal(kv.second->state);
      });
    });
  }

  ExecutorReport shutdown() {
    drain();
    {
      std::lock_guard<std::mutex> lock(mu);
      stopping = true;
      sched_cv.notify_all();
    }
    sched_thread.join();
    for (auto& [id, r] : jobs)
      if (r->worker.joinable()) r->worker.join();
    std::lock_guard<std::mutex> lock(mu);
    return report;
  }
};

Executor::Executor(const sched::Scheduler& scheduler)
    : impl_(std::make_unique<Impl>(scheduler)) {}

Executor::~Executor() {
  if (impl_ && impl_->sched_thread.joinable()) (void)impl_->shutdown();
}

JobId Executor::submit(RtJob job) { return impl_->submit(std::move(job)); }

void Executor::drain() { impl_->drain(); }

ExecutorReport Executor::shutdown() { return impl_->shutdown(); }

}  // namespace lfrt::rt
