// Tests for the rt layer: access-time microbenchmarks (structure, not
// absolute timing) and the priority helpers' graceful degradation.
#include <gtest/gtest.h>

#include <thread>

#include "rt/access_time.hpp"
#include "rt/priority.hpp"

namespace lfrt::rt {
namespace {

TEST(Priority, PinToCpuZeroUsuallySucceeds) {
  // CPU 0 exists on every host; pinning may still be refused in exotic
  // sandboxes, so only require a clean boolean, then restore no state
  // (affinity is per-thread and the test thread ends with the test).
  const bool ok = pin_to_cpu(0);
  EXPECT_TRUE(ok || !ok);  // must not crash; result is host-dependent
}

TEST(Priority, RealtimePriorityDegradesGracefully) {
  // Unprivileged hosts refuse SCHED_FIFO; the helper must return false
  // rather than aborting, and the thread keeps running.
  std::thread t([] {
    const bool got_rt = set_realtime_priority(10);
    (void)got_rt;  // either outcome is legal; thread must survive
  });
  t.join();
  SUCCEED();
}

TEST(AccessTime, LockFreeMeasurementProducesSamples) {
  AccessTimeConfig cfg;
  cfg.object_count = 2;
  cfg.samples = 200;
  cfg.with_interferer = false;
  const auto res = measure_lockfree_access(cfg);
  EXPECT_EQ(res.per_access_ns.count(), 200u);
  EXPECT_GT(res.per_access_ns.mean(), 0.0);
  EXPECT_GE(res.retries, 0);
}

TEST(AccessTime, LockBasedMeasurementIncludesSchedulerCost) {
  AccessTimeConfig cfg;
  cfg.object_count = 2;
  cfg.samples = 200;
  cfg.with_interferer = false;
  const auto lb = measure_lockbased_access(cfg);
  const auto lf = measure_lockfree_access(cfg);
  EXPECT_EQ(lb.per_access_ns.count(), 200u);
  // r embeds a full lock-based-RUA invocation per request: it must
  // exceed the bare CAS-queue op by a comfortable margin on any host.
  EXPECT_GT(lb.per_access_ns.mean(), 3.0 * lf.per_access_ns.mean());
}

TEST(AccessTime, LockBasedCostGrowsWithObjects) {
  AccessTimeConfig small, large;
  small.object_count = 1;
  small.samples = 300;
  small.with_interferer = false;
  large = small;
  large.object_count = 9;
  const auto a = measure_lockbased_access(small);
  const auto b = measure_lockbased_access(large);
  // Longer dependency chains per invocation: the Figure-8 growth.
  EXPECT_GT(b.per_access_ns.mean(), a.per_access_ns.mean());
}

TEST(AccessTime, InterfererDoesNotBreakMeasurement) {
  AccessTimeConfig cfg;
  cfg.object_count = 3;
  cfg.samples = 300;
  cfg.with_interferer = true;
  const auto res = measure_lockfree_access(cfg);
  EXPECT_EQ(res.per_access_ns.count(), 300u);
  EXPECT_GT(res.per_access_ns.mean(), 0.0);
}

}  // namespace
}  // namespace lfrt::rt
