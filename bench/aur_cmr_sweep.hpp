// Shared driver for Figures 10-13: AUR and CMR of lock-based vs
// lock-free RUA as the number of shared objects grows, at a fixed
// approximate load and TUF class.
//
// Following Section 6.2's setup, the task set has 10 tasks; "increasing
// number of shared objects" increases both the object universe and the
// per-job access count (each job touches every queue once, as in the
// paper's arbitrary-access 10-task/10-queue configuration).
#pragma once

#include "common.hpp"

namespace lfrt::bench {

/// Lock-based access time as a function of the number of shared objects
/// the job set uses.  Figure 8 (both the paper's and ours) shows r
/// growing with the object count — every lock/unlock request invokes
/// lock-based RUA, whose dependency machinery scales with the sharing
/// degree — while s stays flat.  The growth rate mirrors the measured
/// fig08 slope relative to the 500 us average job execution time.
inline Time r_for_objects(int objects) {
  return usec(100) + usec(120) * objects;
}

inline int run_aur_cmr_sweep(const std::string& fig, double load,
                             workload::TufClass tuf_class,
                             std::uint64_t seed = 42) {
  print_header(fig,
               std::string("AUR/CMR vs #objects, AL=") + Table::num(load, 2) +
                   (tuf_class == workload::TufClass::kStep
                        ? ", step TUFs"
                        : ", heterogeneous TUFs"));
  std::cout << "tasks=10  r=100us+120us*objects  s=" << to_usec(kDefaultS)
            << "us  ns/op=" << kDefaultNsPerOp << "  seed=" << seed
            << "\n\n";

  Table table({"objects", "r (us)", "AUR lock-based", "AUR lock-free",
               "CMR lock-based", "CMR lock-free", "blk/job", "rty/job"});

  // Both sharing modes of every sweep point fan out as one batch; rows
  // are reduced and printed in sweep order below.
  std::vector<SeriesSpec> series;
  for (int objects = 1; objects <= 10; ++objects) {
    workload::WorkloadSpec spec;
    spec.task_count = 10;
    spec.object_count = objects;
    spec.accesses_per_job = objects;  // each job touches every queue
    spec.avg_exec = usec(500);
    spec.load = load;
    spec.tuf_class = tuf_class;
    spec.seed = seed;
    const TaskSet ts = workload::make_task_set(spec);

    RunParams rp;
    rp.r = r_for_objects(objects);
    rp.mode = sim::ShareMode::kLockBased;
    series.push_back({ts, rp});
    rp.mode = sim::ShareMode::kLockFree;
    series.push_back({ts, rp});
  }
  const std::vector<SeriesPoint> points = run_series_batch(pool(), series);

  for (int objects = 1; objects <= 10; ++objects) {
    const SeriesPoint& lb = points[static_cast<std::size_t>(objects - 1) * 2];
    const SeriesPoint& lf =
        points[static_cast<std::size_t>(objects - 1) * 2 + 1];
    table.add_row({std::to_string(objects),
                   std::to_string(r_for_objects(objects) / 1000),
                   Table::num(lb.aur_mean, 3) + " ±" + Table::num(lb.aur_ci, 3),
                   Table::num(lf.aur_mean, 3) + " ±" + Table::num(lf.aur_ci, 3),
                   Table::num(lb.cmr_mean, 3) + " ±" + Table::num(lb.cmr_ci, 3),
                   Table::num(lf.cmr_mean, 3) + " ±" + Table::num(lf.cmr_ci, 3),
                   Table::num(lb.blockings_per_job, 2),
                   Table::num(lf.retries_per_job, 2)});
  }
  table.print();
  std::cout << "\ncsv:\n";
  table.print_csv();
  return 0;
}

}  // namespace lfrt::bench
