#include "rt/executor.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/object_stats.hpp"
#include "sched/scheduler.hpp"
#include "support/check.hpp"

namespace lfrt::rt {
namespace {

using Clock = std::chrono::steady_clock;

enum class RtState : std::uint8_t {
  kReady,      // submitted, waiting for its first dispatch
  kRunning,    // the dispatched job (its worker owns the CPU)
  kPreempted,  // parked inside checkpoint()
  kAborting,   // abort requested; body will throw at its next checkpoint
  kCompleted,
  kAborted,
};

bool terminal(RtState s) {
  return s == RtState::kCompleted || s == RtState::kAborted;
}

}  // namespace

struct Executor::Impl {
  struct JobRec;

  const sched::Scheduler* scheduler;
  Clock::time_point epoch = Clock::now();

  std::mutex mu;
  std::condition_variable sched_cv;    // wakes the scheduling thread
  std::condition_variable worker_cv;   // wakes parked workers
  std::map<JobId, std::unique_ptr<JobRec>> jobs;
  JobId next_id = 0;
  JobId dispatched = kNoJob;
  bool stopping = false;
  ExecutorReport report;
  std::thread sched_thread;

  struct JobRec final : public JobContext {
    Impl* owner = nullptr;
    JobId jid = kNoJob;
    RtJob spec;
    RtState state = RtState::kReady;
    Time ran_for = 0;        // accumulated execution time estimate input
    Time last_dispatch = 0;  // when it last got the CPU
    std::thread worker;

    /// The job's terminal record for the RunReport: arrival/critical
    /// from real clocks, retries/blockings credited by the shared
    /// structures through this worker's ScopedAccessSink, preemptions
    /// counted by the scheduling thread.
    Job acct;

    // --- JobContext ---
    void checkpoint() override {
      std::unique_lock<std::mutex> lock(owner->mu);
      if (state == RtState::kAborting) throw JobAborted{};
      if (owner->dispatched == jid) return;  // still ours: keep going
      // Preempted: account the stint and park.
      state = RtState::kPreempted;
      owner->sched_cv.notify_all();
      owner->worker_cv.wait(lock, [&] {
        return owner->dispatched == jid || state == RtState::kAborting;
      });
      if (state == RtState::kAborting) throw JobAborted{};
      state = RtState::kRunning;
    }

    bool aborted() const override {
      std::lock_guard<std::mutex> lock(owner->mu);
      return state == RtState::kAborting;
    }

    JobId id() const override { return jid; }
  };

  explicit Impl(const sched::Scheduler& sch) : scheduler(&sch) {
    sched_thread = std::thread([this] { scheduler_loop(); });
  }

  Time now() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - epoch)
        .count();
  }

  JobId submit(RtJob job) {
    LFRT_CHECK_MSG(job.tuf != nullptr, "job needs a TUF");
    LFRT_CHECK_MSG(job.body != nullptr, "job needs a body");
    LFRT_CHECK_MSG(job.expected_exec > 0, "job needs an execution estimate");
    std::unique_lock<std::mutex> lock(mu);
    const JobId id = next_id++;
    auto rec = std::make_unique<JobRec>();
    JobRec* r = rec.get();
    r->owner = this;
    r->jid = id;
    r->spec = std::move(job);
    r->acct.id = id;
    r->acct.task = r->spec.task;
    r->acct.arrival = now();
    r->acct.critical_abs = r->acct.arrival + r->spec.tuf->critical_time();
    ++report.submitted;
    report.max_possible_utility += r->spec.tuf->utility(0);
    jobs.emplace(id, std::move(rec));
    r->worker = std::thread([this, r] { worker_main(r); });
    sched_cv.notify_all();
    return id;
  }

  void worker_main(JobRec* r) {
    {
      // Wait for the first dispatch (or an abort before ever running).
      std::unique_lock<std::mutex> lock(mu);
      worker_cv.wait(lock, [&] {
        return dispatched == r->jid || r->state == RtState::kAborting;
      });
      if (r->state != RtState::kAborting) r->state = RtState::kRunning;
    }
    bool completed = false;
    {
      // Structure-level retry/contention events on this thread credit
      // the job's own counters — per-job f_i from real CAS failures.
      runtime::ScopedAccessSink sink(&r->acct.retries, &r->acct.blockings);
      try {
        {
          std::lock_guard<std::mutex> lock(mu);
          if (r->state == RtState::kAborting) throw JobAborted{};
        }
        r->spec.body(*r);
        completed = true;
      } catch (const JobAborted&) {
        if (r->spec.abort_handler) r->spec.abort_handler();
      }
    }
    std::unique_lock<std::mutex> lock(mu);
    if (completed) {
      r->state = RtState::kCompleted;
      r->acct.state = JobState::kCompleted;
      r->acct.completion = now();
      ++report.completed;
      report.accrued_utility +=
          r->spec.tuf->utility(r->acct.completion - r->acct.arrival);
    } else {
      r->state = RtState::kAborted;
      r->acct.state = JobState::kAborted;
      ++report.aborted;
    }
    if (dispatched == r->jid) r->ran_for += now() - r->last_dispatch;
    r->acct.exec_actual = r->ran_for;
    if (dispatched == r->jid) dispatched = kNoJob;
    sched_cv.notify_all();
  }

  void scheduler_loop() {
    std::unique_lock<std::mutex> lock(mu);
    // Reused across scheduling passes so the loop's steady state stays
    // off the allocator (same contract as the simulator's hot path).
    const auto ws = scheduler->make_workspace();
    sched::ScheduleResult res;
    std::vector<sched::SchedJob> view;
    while (true) {
      const Time t = now();

      // Raise abort-exceptions for expired jobs (the timer going off).
      for (auto& [id, r] : jobs) {
        if (terminal(r->state) || r->state == RtState::kAborting) continue;
        if (t >= r->acct.critical_abs) {
          r->state = RtState::kAborting;
          if (dispatched == id) {
            r->ran_for += t - r->last_dispatch;
            dispatched = kNoJob;
          }
          worker_cv.notify_all();  // parked workers observe and throw
        }
      }

      // Build the scheduler view over pending jobs.
      view.clear();
      for (auto& [id, r] : jobs) {
        if (terminal(r->state) || r->state == RtState::kAborting) continue;
        sched::SchedJob sj;
        sj.id = id;
        sj.arrival = r->acct.arrival;
        sj.critical = r->acct.critical_abs;
        Time elapsed = r->ran_for;
        if (dispatched == id) elapsed += t - r->last_dispatch;
        sj.remaining = std::max<Time>(1, r->spec.expected_exec - elapsed);
        sj.tuf = r->spec.tuf.get();
        view.push_back(sj);
      }

      if (stopping && view.empty()) return;

      scheduler->build_into(view, t, ws.get(), res);
      ++report.sched_invocations;
      report.sched_ops += res.ops;
      if (res.dispatch != dispatched) {
        // Account the descheduled job's stint (a preemption if it is
        // still unfinished).
        if (dispatched != kNoJob) {
          auto it = jobs.find(dispatched);
          if (it != jobs.end()) {
            JobRec& prev = *it->second;
            prev.ran_for += t - prev.last_dispatch;
            if (!terminal(prev.state) && prev.state != RtState::kAborting) {
              ++prev.acct.preemptions;
              ++report.total_preemptions;
            }
          }
        }
        dispatched = res.dispatch;
        if (dispatched != kNoJob) {
          jobs.at(dispatched)->last_dispatch = t;
          ++report.dispatches;
        }
        worker_cv.notify_all();
      }

      // Sleep until the next critical time (abort timer) or any event.
      Time next_expiry = kTimeNever;
      for (auto& [id, r] : jobs) {
        if (terminal(r->state) || r->state == RtState::kAborting) continue;
        next_expiry = std::min(next_expiry, r->acct.critical_abs);
      }
      if (next_expiry == kTimeNever) {
        sched_cv.wait(lock);
      } else {
        sched_cv.wait_until(
            lock, epoch + std::chrono::nanoseconds(next_expiry));
      }
    }
  }

  void drain() {
    std::unique_lock<std::mutex> lock(mu);
    sched_cv.wait(lock, [&] {
      return std::all_of(jobs.begin(), jobs.end(), [](const auto& kv) {
        return terminal(kv.second->state);
      });
    });
  }

  ExecutorReport shutdown() {
    drain();
    {
      std::lock_guard<std::mutex> lock(mu);
      stopping = true;
      sched_cv.notify_all();
    }
    sched_thread.join();
    for (auto& [id, r] : jobs)
      if (r->worker.joinable()) r->worker.join();
    std::lock_guard<std::mutex> lock(mu);
    // Assemble the shared RunReport view: every submitted job reached a
    // terminal state (drain above), so all of them are counted.
    report.counted_jobs = report.submitted;
    report.jobs.clear();
    report.total_retries = 0;
    report.total_blockings = 0;
    for (const auto& [id, r] : jobs) {  // std::map: id order
      report.jobs.push_back(r->acct);
      report.total_retries += r->acct.retries;
      report.total_blockings += r->acct.blockings;
    }
    return report;
  }
};

Executor::Executor(const sched::Scheduler& scheduler)
    : impl_(std::make_unique<Impl>(scheduler)) {}

Executor::~Executor() {
  if (impl_ && impl_->sched_thread.joinable()) (void)impl_->shutdown();
}

JobId Executor::submit(RtJob job) { return impl_->submit(std::move(job)); }

void Executor::drain() { impl_->drain(); }

ExecutorReport Executor::shutdown() { return impl_->shutdown(); }

}  // namespace lfrt::rt
