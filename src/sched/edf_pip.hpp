// EDF with priority inheritance (Sha, Rajkumar, Lehoczky [23]).
//
// The paper's Section 1.1 motivates lock-free sharing against exactly
// this class of lock-based protocol: PIP bounds priority inversion but
// adds scheduler activations on contention and needs the dependency
// bookkeeping this scheduler implements.  Included as the classical
// lock-based baseline between plain EDF (unbounded inversion: a blocked
// head simply yields to the next runnable job, so a middle-eligibility
// job can starve the lock holder indefinitely — the Mars Pathfinder
// failure mode) and RUA (whose dependency-chain schedules subsume
// inheritance).
//
// Dispatch rule: take the earliest-critical-time pending job; if it is
// blocked, follow its chain of holders and run the job at the end — the
// holder *inherits* the blocked job's eligibility.
#pragma once

#include "sched/scheduler.hpp"

namespace lfrt::sched {

/// Scratch for EdfPipScheduler: the sort-order buffer plus the
/// open-addressed JobId -> index map used for inheritance-chain walks.
class EdfPipWorkspace final : public Scheduler::Workspace {
 public:
  std::vector<std::size_t> order;
  std::vector<JobId> map_keys;
  std::vector<std::size_t> map_vals;
};

/// EDF + priority inheritance.  Never rejects a job.
class EdfPipScheduler final : public Scheduler {
 public:
  std::unique_ptr<Workspace> make_workspace() const override;

  void build_into(const std::vector<SchedJob>& jobs, Time now,
                  Workspace* ws, ScheduleResult& out) const override;

  std::string name() const override { return "EDF+PIP"; }
};

}  // namespace lfrt::sched
