// Mutex-serialized counterparts of the reader/writer structures in
// src/lockfree (NbwBuffer, AtomicSnapshot).
//
// Thin aliases of the generic wrappers in locked.hpp with Lock =
// std::mutex (see mutex_queue.hpp for the zoo rationale).  Same
// contention-accounting discipline as every locked structure: each
// acquire records whether it found the lock held, so blocking episodes
// (the paper's n_i events) flow into ObjectStats and — via the
// thread-local sinks — into per-job and per-(object, task) tallies.
// These are the `impl = kMutex` lowering targets for
// ObjectKind::kBuffer / kSnapshot in runtime::SharedObject.
#pragma once

#include <mutex>

#include "lockbased/locked.hpp"

namespace lfrt::lockbased {

/// Mutex-protected state buffer (lock-based NBW counterpart).
template <typename T>
using MutexBuffer = LockedBuffer<T, std::mutex>;

/// Mutex-protected N-segment snapshot.
template <typename T, std::size_t N>
using MutexSnapshot = LockedSnapshot<T, N, std::mutex>;

}  // namespace lfrt::lockbased
