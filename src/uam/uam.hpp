// Unimodal Arbitrary Arrival Model (UAM) — Hermant & Le Lann [12].
//
// A task T_i's arrival behaviour is the tuple ⟨l_i, a_i, W_i⟩: during
// *any* sliding time window of length W_i, at least l_i and at most a_i
// jobs of T_i arrive.  Simultaneous arrivals are allowed.  The periodic
// model is the special case ⟨1, 1, W⟩; UAM embodies a stronger adversary
// than periodic/sporadic models (paper, Sections 1.2 and 2).
//
// This module provides the window arithmetic the paper's proofs rest on
// (maximum/minimum arrivals in an arbitrary interval), conformance
// checkers for arrival traces, and a family of UAM-conformant arrival
// generators, including the adversarial pattern used in the proof of
// Theorem 2 (all of window W^1 released just after t0, all of window W^3
// released just before t0 + C).
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"
#include "support/time.hpp"

namespace lfrt {

/// UAM tuple ⟨l, a, W⟩ for one task.
struct UamSpec {
  std::int64_t min_per_window = 1;  ///< l_i
  std::int64_t max_per_window = 1;  ///< a_i
  Time window = 0;                  ///< W_i

  /// Periodic arrivals with the given period (UAM ⟨1, 1, W⟩).
  static UamSpec periodic(Time period) { return {1, 1, period}; }

  /// Throws InvariantViolation unless 0 <= l <= a, a >= 1, W > 0.
  void validate() const;
};

/// Maximum number of arrivals of a ⟨l, a, W⟩ task in *any* interval of
/// length `interval`: a * (ceil(interval / W) + 1).
///
/// This is the n_i^max of Lemma 4 and the per-task release count used in
/// Theorem 2's proof (worst-case window alignment straddling both ends
/// of the interval).
std::int64_t uam_max_arrivals(const UamSpec& spec, Time interval);

/// Minimum number of arrivals guaranteed in any interval of length
/// `interval`: l * floor(interval / W)  (n_i^min of Lemma 4).
std::int64_t uam_min_arrivals(const UamSpec& spec, Time interval);

/// True iff the sorted arrival trace never exceeds `a` arrivals in any
/// window of length W (windows are treated as half-open [t, t+W); the
/// supremum over window placements is attained at window starts that
/// coincide with arrival instants, which is what the checker sweeps).
bool uam_conforms_max(const UamSpec& spec,
                      const std::vector<Time>& arrivals);

/// True iff every window of length W that lies fully inside
/// [span_begin, span_end] contains at least `l` arrivals.  Used by tests
/// of the AUR lower bounds, which require the l_i guarantee to hold over
/// the measurement horizon.
bool uam_conforms_min(const UamSpec& spec, const std::vector<Time>& arrivals,
                      Time span_begin, Time span_end);

/// Largest arrival count observed in any window of length W over the
/// (sorted) trace — the empirical counterpart of `a`.
std::int64_t uam_max_window_count(Time window,
                                  const std::vector<Time>& arrivals);

/// Smallest arrival count observed in any window of length W fully
/// inside [span_begin, span_end] — the empirical counterpart of `l`.
/// Returns 0 when the span holds no full window.
std::int64_t uam_min_window_count(Time window,
                                  const std::vector<Time>& arrivals,
                                  Time span_begin, Time span_end);

/// Fit the tightest UAM contract ⟨l, a, W⟩ a trace satisfies for the
/// given window length — the inverse problem a system integrator faces
/// when characterizing an arrival source from measurements.  The
/// returned spec is the least permissive one the trace conforms to:
/// any sliding window holds between l and a arrivals.
UamSpec uam_fit(Time window, const std::vector<Time>& arrivals,
                Time span_begin, Time span_end);

/// Arrival-trace generators.  All produce sorted, UAM-max-conformant
/// traces over [0, horizon].
namespace arrivals {

/// One arrival per window, evenly spaced (the periodic special case).
std::vector<Time> periodic(const UamSpec& spec, Time horizon);

/// `a` simultaneous arrivals at the start of every window — the densest
/// *regular* pattern UAM admits.
std::vector<Time> bursty(const UamSpec& spec, Time horizon);

/// Random arrivals: each window of length W receives a uniform number of
/// arrivals in [l, a] at uniform offsets, then the whole trace is passed
/// through the admission gate so the sliding-window (not just tiled-
/// window) constraint holds.
std::vector<Time> random_conformant(const UamSpec& spec, Time horizon,
                                    Rng& rng);

/// Exactly `a` arrivals at the start of every window, with a uniformly
/// random phase offset: the densest regular UAM pattern at an exact
/// long-run rate of a/W.  Used by the load-sweep experiments, where the
/// generated load must match the configured AL (the admission-gated
/// random generator sheds a load-dependent fraction of proposals).
std::vector<Time> periodic_phased(const UamSpec& spec, Time horizon,
                                  Rng& rng);

/// The adversarial pattern from the proof of Theorem 2: clusters of `a`
/// simultaneous arrivals spaced exactly W apart starting at `anchor`, so
/// an interval [anchor, anchor + interval] sees close to
/// a * (ceil(interval/W) + 1) arrivals.  Clusters continue to `horizon`.
std::vector<Time> adversarial(const UamSpec& spec, Time anchor,
                              Time horizon);

}  // namespace arrivals

/// Online admission gate enforcing the `a`-per-window constraint: offers
/// arrive in time order; an offer is admitted iff admitting it keeps
/// every window of length W at or below `a` arrivals.
///
/// This is the mechanism a dynamic system at the system boundary would
/// use to uphold its declared UAM contract, and it is how the random
/// generator guarantees conformance.
class UamGate {
 public:
  explicit UamGate(UamSpec spec);

  /// Returns true (and records the arrival) iff `t` can be admitted.
  /// `t` must be >= every previously offered time.
  bool offer(Time t);

  std::int64_t admitted() const { return admitted_; }
  std::int64_t rejected() const { return rejected_; }

 private:
  UamSpec spec_;
  std::vector<Time> recent_;  // admitted arrivals within the last window
  std::int64_t admitted_ = 0;
  std::int64_t rejected_ = 0;
  Time last_offer_ = -1;
};

}  // namespace lfrt
