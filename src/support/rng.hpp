// Deterministic pseudo-random number generation for reproducible
// experiments.
//
// Every benchmark prints the seed it used; re-running with the same seed
// regenerates the same workload, arrival trace, and therefore the same
// table row.  xoshiro256** is used as the core generator (fast, good
// statistical quality, trivially seedable from a single 64-bit value via
// SplitMix64).
#pragma once

#include <cstdint>

namespace lfrt {

/// SplitMix64 — used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — the experiment-facing generator.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also feed
/// <random> distributions where convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  constexpr result_type operator()() { return next(); }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  constexpr std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    // Lemire-style rejection-free multiply-shift is overkill here; simple
    // modulo bias is < 2^-40 for the spans used in experiments, but use
    // rejection sampling anyway to keep property tests exact.
    if (span == 0) return lo + static_cast<std::int64_t>(next());
    const std::uint64_t limit = (~0ULL) - (~0ULL) % span;
    std::uint64_t v = next();
    while (v >= limit) v = next();
    return lo + static_cast<std::int64_t>(v % span);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform_real(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with probability p of returning true.
  constexpr bool chance(double p) { return uniform01() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace lfrt
