#include "task/task.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace lfrt {

void TaskParams::validate() const {
  LFRT_CHECK_MSG(id >= 0, "task id must be non-negative");
  arrival.validate();
  LFRT_CHECK_MSG(tuf != nullptr, "task must have a TUF");
  LFRT_CHECK_MSG(tuf->critical_time() <= arrival.window,
                 "model requires C_i <= W_i (paper, Section 2)");
  LFRT_CHECK_MSG(exec_time > 0, "u_i must be positive");
  LFRT_CHECK_MSG(abort_handler_time >= 0, "handler time must be >= 0");
  LFRT_CHECK_MSG(exec_variation >= 0.0 && exec_variation < 1.0,
                 "exec_variation must lie in [0, 1)");
  Time prev = 0;
  for (const auto& acc : accesses) {
    LFRT_CHECK_MSG(acc.object >= 0, "access must name a shared object");
    LFRT_CHECK_MSG(acc.offset >= prev, "access offsets must be sorted");
    LFRT_CHECK_MSG(acc.offset <= exec_time,
                   "access offset beyond the job's compute time");
    prev = acc.offset;
  }

  LFRT_CHECK_MSG(accesses.empty() || spans.empty(),
                 "a task uses flat accesses or nested spans, not both");
  // Spans: sorted by acquire offset, within [0, u_i], stack discipline.
  std::vector<const LockSpan*> open;
  Time prev_acquire = 0;
  for (const auto& sp : spans) {
    LFRT_CHECK_MSG(sp.object >= 0, "span must name a shared object");
    LFRT_CHECK_MSG(sp.acquire_offset >= prev_acquire,
                   "span acquire offsets must be sorted");
    LFRT_CHECK_MSG(sp.acquire_offset < sp.release_offset,
                   "span must hold the lock for a positive interval");
    LFRT_CHECK_MSG(sp.release_offset <= exec_time,
                   "span release beyond the job's compute time");
    prev_acquire = sp.acquire_offset;
    // Pop enclosing spans that end before this one begins.
    while (!open.empty() &&
           open.back()->release_offset <= sp.acquire_offset)
      open.pop_back();
    // Stack discipline: an inner span must release no later than every
    // span still open around it.
    for (const LockSpan* o : open) {
      LFRT_CHECK_MSG(sp.release_offset <= o->release_offset,
                     "spans must be properly nested (LIFO release)");
      LFRT_CHECK_MSG(sp.object != o->object,
                     "a job must not re-acquire a lock it already holds");
    }
    open.push_back(&sp);
  }
}

const TaskParams& TaskSet::by_id(TaskId id) const {
  auto it = std::find_if(tasks.begin(), tasks.end(),
                         [&](const TaskParams& t) { return t.id == id; });
  LFRT_CHECK_MSG(it != tasks.end(), "unknown task id");
  return *it;
}

void TaskSet::validate() const {
  LFRT_CHECK_MSG(!tasks.empty(), "task set must not be empty");
  if (!object_units.empty()) {
    LFRT_CHECK_MSG(object_units.size() ==
                       static_cast<std::size_t>(object_count),
                   "object_units must list every object");
    for (const auto u : object_units)
      LFRT_CHECK_MSG(u >= 1, "every object needs at least one unit");
  }
  for (const auto& t : tasks) {
    t.validate();
    for (const auto& acc : t.accesses)
      LFRT_CHECK_MSG(acc.object < object_count,
                     "access names an object outside the universe");
    for (const auto& sp : t.spans)
      LFRT_CHECK_MSG(sp.object < object_count,
                     "span names an object outside the universe");
  }
  // Task ids must be unique.
  std::vector<TaskId> ids;
  for (const auto& t : tasks) ids.push_back(t.id);
  std::sort(ids.begin(), ids.end());
  LFRT_CHECK_MSG(std::adjacent_find(ids.begin(), ids.end()) == ids.end(),
                 "duplicate task ids");
}

double TaskSet::approximate_load() const {
  double al = 0.0;
  for (const auto& t : tasks)
    al += static_cast<double>(t.exec_time) /
          static_cast<double>(t.critical_time());
  return al;
}

}  // namespace lfrt
