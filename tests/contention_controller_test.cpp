// runtime::ContentionControllerCore policy, conflict-group dispatch
// steering, and the adaptive simulator path.
//
// The core is pure logic over ContentionMatrix snapshots, so its
// promote / idle-demote / calm-hold rules are pinned here with
// hand-built epochs — no threads, no timing.  The steering tests pin
// the DispatchSelector contract the executor and simulator both rely
// on: with no groups installed select_steered IS select, and with
// groups it may reorder a selection but never shrink it.  The sim tests
// pin that adaptive runs are deterministic and no worse than static.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "runtime/contention_controller.hpp"
#include "runtime/exec_adapter.hpp"
#include "runtime/shared_object.hpp"
#include "sched/dispatch.hpp"
#include "sched/rua.hpp"
#include "sim/simulator.hpp"
#include "workload/workload.hpp"

namespace lfrt {
namespace {

using runtime::ContentionControllerCore;
using runtime::ContentionMatrix;
using runtime::ControllerConfig;
using runtime::ObjectImpl;
using runtime::ObjectKind;
using runtime::ObjectSpec;

constexpr std::int32_t kTasks = 2;

ControllerConfig test_config() {
  ControllerConfig cfg;
  cfg.min_epoch_ops = 10;
  cfg.promote_rate = 0.1;
  cfg.demote_rate = 0.01;
  cfg.demote_patience = 2;
  cfg.steer_min_retries = 8;
  return cfg;
}

std::vector<ObjectSpec> adaptive_queue(std::int32_t shards = 1) {
  ObjectSpec s{ObjectKind::kQueue, ObjectImpl::kLockFree, shards,
               /*adapt=*/true};
  return {s};
}

/// An epoch snapshot where object 0 accumulated `ops` / `retries`
/// total, spread over task 0.
ContentionMatrix snap(std::int64_t ops, std::int64_t retries) {
  ContentionMatrix m(1, kTasks);
  m.at(0, 0).ops = ops;
  m.at(0, 0).retries = retries;
  return m;
}

/// Step the core until object 0's storm promotes it along the whole
/// ladder; returns the decision sequence.
TEST(ControllerCore, PromotesAlongTheLadderToTheCap) {
  ContentionControllerCore core(test_config(), adaptive_queue());
  EXPECT_TRUE(core.any_adaptive());
  ASSERT_TRUE(core.step(snap(0, 0)).decisions.empty());  // baseline

  std::int64_t ops = 0, retries = 0;
  std::vector<std::int32_t> ladder;
  for (int e = 0; e < 6; ++e) {
    ops += 100;
    retries += 50;  // epoch rate 0.5 >= promote_rate
    for (const auto& d : core.step(snap(ops, retries)).decisions) {
      EXPECT_EQ(d.object, 0);
      EXPECT_EQ(d.from_shards, ladder.empty() ? 1 : ladder.back());
      EXPECT_DOUBLE_EQ(d.rate, 0.5);
      ladder.push_back(d.to_shards);
    }
  }
  EXPECT_EQ(ladder, (std::vector<std::int32_t>{2, 4, 8}));
  EXPECT_EQ(core.shards(0), runtime::kMaxObjectShards);  // capped, no churn
}

TEST(ControllerCore, MinEpochOpsGatesTheRate) {
  ContentionControllerCore core(test_config(), adaptive_queue());
  core.step(snap(0, 0));
  // 5 ops < min_epoch_ops: a 100% retry rate on a trickle is noise.
  EXPECT_TRUE(core.step(snap(5, 5)).decisions.empty());
  EXPECT_EQ(core.shards(0), 1);
}

/// The revised demote rule: a busy object whose rate collapsed is CALM
/// (the stripes are working) — it must hold, not demote, no matter how
/// many calm epochs pass.  Demoting it would re-create the storm.
TEST(ControllerCore, CalmEpochsHoldTheShardCount) {
  ContentionControllerCore core(test_config(), adaptive_queue());
  core.step(snap(0, 0));
  std::int64_t ops = 100, retries = 50;
  core.step(snap(ops, retries));  // promote 1 -> 2
  ASSERT_EQ(core.shards(0), 2);

  for (int e = 0; e < 10; ++e) {
    ops += 100;  // busy, zero retries: rate 0 <= demote_rate
    EXPECT_TRUE(core.step(snap(ops, retries)).decisions.empty());
  }
  EXPECT_EQ(core.shards(0), 2);
}

TEST(ControllerCore, IdleEpochsDemoteAfterPatienceTowardFloor) {
  ControllerConfig cfg = test_config();
  ContentionControllerCore core(cfg, adaptive_queue(/*shards=*/2));
  core.step(snap(0, 0));
  std::int64_t ops = 0, retries = 0;
  for (int e = 0; e < 2; ++e) {
    ops += 100;
    retries += 50;
    core.step(snap(ops, retries));
  }
  ASSERT_EQ(core.shards(0), 8);

  // Idle epochs (no traffic): halve every demote_patience epochs, but
  // never below the spec floor of 2.
  std::vector<std::int32_t> path;
  for (int e = 0; e < 8; ++e) {
    for (const auto& d : core.step(snap(ops, retries)).decisions)
      path.push_back(d.to_shards);
  }
  EXPECT_EQ(path, (std::vector<std::int32_t>{4, 2}));
  EXPECT_EQ(core.shards(0), 2);
}

TEST(ControllerCore, ContendedEpochResetsDemotePatience) {
  ContentionControllerCore core(test_config(), adaptive_queue());
  core.step(snap(0, 0));
  std::int64_t ops = 100, retries = 50;
  core.step(snap(ops, retries));  // promote 1 -> 2
  ASSERT_EQ(core.shards(0), 2);

  EXPECT_TRUE(core.step(snap(ops, retries)).decisions.empty());  // idle #1
  // Busy epoch between demote_rate and promote_rate: genuinely
  // contended — resets the idle streak.
  ops += 100;
  retries += 5;  // rate 0.05
  core.step(snap(ops, retries));
  EXPECT_TRUE(core.step(snap(ops, retries)).decisions.empty());  // idle #1'
  EXPECT_EQ(core.shards(0), 2);  // patience=2 not reached after reset
}

TEST(ControllerCore, NonAdaptiveAndUnshardableObjectsAreIgnored) {
  std::vector<ObjectSpec> specs(3);
  specs[0] = {ObjectKind::kQueue, ObjectImpl::kLockFree, 1, /*adapt=*/false};
  specs[1] = {ObjectKind::kBuffer, ObjectImpl::kLockFree, 1, /*adapt=*/true};
  specs[2] = {ObjectKind::kQueue, ObjectImpl::kLockBased, 1, /*adapt=*/true};
  ContentionControllerCore core(test_config(), specs);
  EXPECT_FALSE(core.any_adaptive());
  for (std::int32_t o = 0; o < 3; ++o) EXPECT_FALSE(core.adaptive(o));

  ContentionMatrix m(3, kTasks);
  core.step(m);
  for (std::int32_t o = 0; o < 3; ++o) m.at(o, 0) = {1000, 900, 0};
  EXPECT_TRUE(core.step(m).decisions.empty());
  for (std::int32_t o = 0; o < 3; ++o) EXPECT_EQ(core.shards(o), 1);
}

TEST(ControllerCore, DimensionChangeRebaselines) {
  ContentionControllerCore core(test_config(), adaptive_queue());
  core.step(snap(0, 0));
  // A snapshot of different shape must not be diffed against the old
  // baseline — it only re-baselines.
  ContentionMatrix wide(1, kTasks + 2);
  wide.at(0, 0) = {1000, 900, 0};
  EXPECT_TRUE(core.step(wide).decisions.empty());
  // Next same-shape epoch diffs against `wide`, not against zero.
  ContentionMatrix next = wide;
  EXPECT_TRUE(core.step(next).decisions.empty());
  EXPECT_EQ(core.shards(0), 1);
}

TEST(ControllerCore, ConflictVectorNamesEachTasksHottestObject) {
  ObjectSpec q{ObjectKind::kQueue, ObjectImpl::kLockFree, 1, true};
  ContentionControllerCore core(test_config(), {q, q});
  ContentionMatrix m(2, kTasks);
  core.step(m);

  // Task 0: object 1 is hottest (10 >= steer_min_retries); task 1's 3
  // epoch retries are below the steering threshold.
  m.at(0, 0).ops = 100;
  m.at(0, 0).retries = 4;
  m.at(1, 0).ops = 100;
  m.at(1, 0).retries = 10;
  m.at(0, 1).ops = 50;
  m.at(0, 1).retries = 3;
  const auto epoch = core.step(m);
  ASSERT_EQ(epoch.conflict_groups.size(), static_cast<std::size_t>(kTasks));
  EXPECT_EQ(epoch.conflict_groups[0], 1);
  EXPECT_EQ(epoch.conflict_groups[1], -1);

  // No task crossed the threshold this epoch: steering off entirely.
  EXPECT_TRUE(core.step(m).conflict_groups.empty());
}

// ---- dispatch steering ----------------------------------------------

sched::ScheduleResult schedule_of(std::vector<JobId> ids) {
  sched::ScheduleResult res;
  res.dispatch = ids.empty() ? kNoJob : ids.front();
  res.schedule = std::move(ids);
  return res;
}

constexpr auto kAllEligible = [](JobId) { return true; };
// Job id == task id in these tests.
constexpr auto kIdentityTask = [](JobId id) { return static_cast<TaskId>(id); };

TEST(DispatchSteering, NoGroupsInstalledIsSelectBitForBit) {
  sched::DispatchSelector a, b;
  const auto res = schedule_of({3, 1, 4, 0, 2});
  const std::vector<JobId> front{5};
  const auto eligible = [](JobId id) { return id != 4; };
  const auto plain = a.select(front, res, 3, /*id_limit=*/8, eligible);
  const auto steered =
      b.select_steered(front, res, 3, 8, eligible, kIdentityTask);
  EXPECT_EQ(plain, steered);
  EXPECT_EQ(plain, (std::vector<JobId>{5, 3, 1}));
}

TEST(DispatchSteering, SameGroupJobsAreSpreadAcrossTheSelection) {
  sched::DispatchSelector sel;
  // Tasks 0 and 1 hammer object 7; task 2 is unsteered.
  sel.set_conflict_groups({7, 7, -1});
  const auto res = schedule_of({0, 1, 2});
  const auto& picked =
      sel.select_steered({}, res, 2, /*id_limit=*/4, kAllEligible,
                         kIdentityTask);
  // Job 1 shares job 0's storm cell, so job 2 takes the second slot.
  EXPECT_EQ(picked, (std::vector<JobId>{0, 2}));
}

TEST(DispatchSteering, WorkConservationRefillsFromDeferred) {
  sched::DispatchSelector sel;
  sel.set_conflict_groups({7, 7});
  const auto res = schedule_of({0, 1});
  const auto& picked =
      sel.select_steered({}, res, 2, /*id_limit=*/4, kAllEligible,
                         kIdentityTask);
  // No other work exists: the deferred same-group job beats an idle CPU.
  EXPECT_EQ(picked, (std::vector<JobId>{0, 1}));
}

TEST(DispatchSteering, StrictGroupsLeaveDeferredSlotsIdle) {
  sched::DispatchSelector sel;
  sel.set_conflict_groups({7, 7});
  sel.set_strict_groups(true);
  EXPECT_TRUE(sel.strict_groups());
  const auto res = schedule_of({0, 1});
  // Job 1 shares job 0's group; with strict groups the second slot
  // stays idle instead of refilling — the no-co-dispatch guarantee the
  // analysis::mp refinement assumes.
  const auto& picked = sel.select_steered({}, res, 2, /*id_limit=*/4,
                                          kAllEligible, kIdentityTask);
  EXPECT_EQ(picked, (std::vector<JobId>{0}));
}

TEST(DispatchSteering, StrictGroupsStillAdmitFrontAndNomination) {
  sched::DispatchSelector sel;
  sel.set_conflict_groups({7, 7});
  sel.set_strict_groups(true);
  sched::ScheduleResult res;
  res.dispatch = 0;
  res.schedule = {0, 1};
  // Front job 1 and nomination 0 share group 7 yet both dispatch: the
  // must-run paths are exempt even in strict mode.
  const auto& picked = sel.select_steered({1}, res, 2, /*id_limit=*/4,
                                          kAllEligible, kIdentityTask);
  EXPECT_EQ(picked, (std::vector<JobId>{1, 0}));
}

TEST(DispatchSteering, FrontAndDispatchNominationAreNeverSteered) {
  sched::DispatchSelector sel;
  sel.set_conflict_groups({7, 7, 7});
  sched::ScheduleResult res;
  res.dispatch = 1;
  res.schedule = {1, 2};
  const auto& picked = sel.select_steered({0}, res, 3, /*id_limit=*/4,
                                          kAllEligible, kIdentityTask);
  // Front job 0 and nomination 1 are must-runs despite sharing group 7;
  // only schedule entry 2 defers, then refills the free slot.
  EXPECT_EQ(picked, (std::vector<JobId>{0, 1, 2}));
}

// ---- adaptive simulator runs ----------------------------------------

sim::SimReport run_adaptive_sim(bool adapt) {
  workload::WorkloadSpec spec;
  spec.task_count = 8;
  spec.object_count = 2;
  spec.accesses_per_job = 10;
  spec.avg_exec = usec(200);
  spec.load = 3.0;
  spec.tuf_class = workload::TufClass::kStep;
  spec.seed = 9;
  const TaskSet ts = workload::make_task_set(spec);

  Time max_window = 0;
  for (const auto& t : ts.tasks)
    max_window = std::max(max_window, t.arrival.window);
  const Time horizon = max_window * 3;

  sim::SimConfig cfg;
  cfg.mode = sim::ShareMode::kLockFree;
  cfg.lockfree_access_time = usec(10);
  cfg.objects = runtime::uniform_objects(ts.object_count, ObjectKind::kQueue,
                                         ObjectImpl::kLockFree);
  for (auto& s : cfg.objects) s.adapt = adapt;
  cfg.controller.epoch = usec(500);
  cfg.controller.min_epoch_ops = 16;
  cfg.controller.promote_rate = 0.02;
  cfg.cpu_count = 4;
  cfg.horizon = horizon;
  static const sched::RuaScheduler kScheduler(sched::Sharing::kLockFree);
  sim::Simulator sim(ts, kScheduler, cfg);
  const auto traces =
      runtime::make_arrival_traces(ts, horizon, /*seed=*/3000,
                                   /*periodic=*/true);
  for (const auto& t : ts.tasks)
    sim.set_arrivals(t.id, traces[static_cast<std::size_t>(t.id)]);
  return sim.run();
}

/// Adaptive runs stay deterministic: the controller is epoch-event
/// driven, so two identical runs agree on every decision and every
/// heatmap cell — the property the bench's reproducibility rests on.
TEST(AdaptiveSim, RunsAreDeterministic) {
  const sim::SimReport a = run_adaptive_sim(true);
  const sim::SimReport b = run_adaptive_sim(true);
  EXPECT_EQ(a.total_retries, b.total_retries);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.controller_epochs, b.controller_epochs);
  EXPECT_EQ(a.shard_decisions, b.shard_decisions);
  EXPECT_EQ(a.contention, b.contention);
}

TEST(AdaptiveSim, AdaptationActsAndDoesNotRegress) {
  const sim::SimReport stat = run_adaptive_sim(false);
  const sim::SimReport adpt = run_adaptive_sim(true);

  EXPECT_TRUE(stat.shard_decisions.empty());
  EXPECT_EQ(stat.controller_epochs, 0);
  ASSERT_EQ(stat.contention.shard_counts.size(), 2u);
  EXPECT_EQ(stat.contention.shard_counts[0], 1);

  EXPECT_GT(adpt.controller_epochs, 0);
  ASSERT_FALSE(adpt.shard_decisions.empty());
  std::int32_t peak = 1;
  for (const auto& d : adpt.shard_decisions) {
    EXPECT_GE(d.time, 0);
    peak = std::max(peak, d.to_shards);
  }
  EXPECT_GT(peak, 1);
  EXPECT_LE(adpt.total_retries, stat.total_retries);
  EXPECT_GE(adpt.completed, stat.completed);
  // The heatmap stays attribution-exact with shards > 1.
  EXPECT_EQ(adpt.contention.totals().retries, adpt.total_retries);
}

/// Executor-side wrapper: the epoch thread runs against a live
/// SharedObjectSet and stop() is idempotent.
TEST(LiveController, EpochThreadStepsAndStopsCleanly) {
  std::vector<ObjectSpec> specs(1);
  specs[0] = {ObjectKind::kQueue, ObjectImpl::kLockFree, 1, /*adapt=*/true};
  runtime::SharedObjectSet set(specs, /*task_count=*/2,
                               /*queue_capacity=*/64);
  ControllerConfig cfg;
  cfg.epoch = usec(500);
  runtime::ContentionController ctl(cfg, &set, /*executor=*/nullptr);
  ctl.start();
  // Give the epoch thread a few periods of mostly-idle traffic.
  for (int i = 0; i < 100; ++i)
    set.access(0, runtime::AccessOp::kWrite, i % 2, i, [] {});
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ctl.stop();
  ctl.stop();  // idempotent
  EXPECT_GE(ctl.epochs(), 1);
  EXPECT_TRUE(ctl.decisions().empty());  // no storm on a trickle
}

}  // namespace
}  // namespace lfrt
