// Concurrent use of one const Scheduler instance (ISSUE satellite:
// document + test the sched::Scheduler::build_into thread-safety
// contract).
//
// The contract (sched/scheduler.hpp): build_into is const and keeps
// every piece of mutable scratch in the caller-owned Workspace, so any
// number of threads may share one scheduler instance as long as each
// brings its own Workspace and ScheduleResult.  The parallel experiment
// harness leans on exactly this — every worker runs Simulators that all
// point at the same const scheduler (bench::scheduler_for).
//
// Run under LFRT_SANITIZE=thread (scripts/check.sh does) this test is
// the proof: TSan flags any racy scratch the contract misses.
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sched/edf.hpp"
#include "sched/rua.hpp"
#include "tuf/tuf.hpp"

namespace lfrt::sched {
namespace {

struct View {
  std::vector<std::unique_ptr<Tuf>> tufs;
  std::vector<SchedJob> jobs;
};

/// A per-thread job view: n pending jobs, optionally one dependency
/// chain so the lock-based dependency machinery runs too.
View make_view(int n, bool chained, int salt) {
  View v;
  for (int i = 0; i < n; ++i) {
    v.tufs.push_back(
        make_step_tuf(5.0 + (i + salt) % 11, msec(50) + usec(17 * i)));
    SchedJob j;
    j.id = i;
    j.arrival = usec(3 * ((i + salt) % 5));
    j.critical = j.arrival + v.tufs.back()->critical_time();
    j.remaining = usec(40 + (i + salt) % 23);
    j.tuf = v.tufs.back().get();
    j.waits_on = chained && i + 1 < n ? i + 1 : kNoJob;
    v.jobs.push_back(j);
  }
  return v;
}

/// Hammer one shared const scheduler from `threads` threads, each with
/// its own Workspace/ScheduleResult, and compare every thread's output
/// against a serial reference build of the same view.
void hammer(const Scheduler& shared, bool chained) {
  constexpr int kThreads = 8;
  constexpr int kIters = 40;

  // Serial references, one per thread-distinct view.
  std::vector<View> views;
  std::vector<ScheduleResult> expected(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    views.push_back(make_view(24, chained, t));
    const auto ws = shared.make_workspace();
    shared.build_into(views.back().jobs, 0, ws.get(), expected[t]);
  }

  std::vector<std::string> errors(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      const auto ws = shared.make_workspace();
      ScheduleResult out;
      for (int i = 0; i < kIters; ++i) {
        shared.build_into(views[static_cast<std::size_t>(t)].jobs, 0,
                          ws.get(), out);
        if (out.schedule != expected[t].schedule ||
            out.dispatch != expected[t].dispatch ||
            out.ops != expected[t].ops) {
          errors[static_cast<std::size_t>(t)] =
              "thread result diverged from the serial reference";
          return;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (const auto& e : errors) EXPECT_EQ(e, "");
}

TEST(ConcurrentBuild, SharedConstRuaLockFree) {
  const RuaScheduler rua(Sharing::kLockFree);
  hammer(rua, /*chained=*/false);
}

TEST(ConcurrentBuild, SharedConstRuaLockBasedChained) {
  const RuaScheduler rua(Sharing::kLockBased);
  hammer(rua, /*chained=*/true);
}

TEST(ConcurrentBuild, SharedConstRuaWithDeadlockDetection) {
  const RuaScheduler rua(Sharing::kLockBased, /*detect_deadlocks=*/true);
  hammer(rua, /*chained=*/true);
}

TEST(ConcurrentBuild, SharedConstEdf) {
  const EdfScheduler edf;
  hammer(edf, /*chained=*/false);
}

}  // namespace
}  // namespace lfrt::sched
