// Extension experiment: the synchronization-mechanism landscape of
// Section 1.1, measured.
//
// One table row per mechanism for a single-writer/3-reader state
// message shared on one CPU:
//
//   mutex            lock-based, blocking possible
//   MS queue         lock-free MPMC (the paper's structure), CAS retries
//   NBW              wait-free writer / lock-free readers (Kopetz [16])
//   snapshot scan    lock-free multi-segment atomic view
//   four-slot SWMR   fully wait-free both sides (Simpson), 4R buffers,
//                    reader count fixed a-priori
//
// Reported: mean ns per writer op and per reader op, retry counts, and
// the space/knowledge cost — the tradeoff the paper frames before
// committing to lock-free.
#include <chrono>
#include <thread>

#include "common.hpp"
#include "lockbased/mutex_queue.hpp"
#include "lockfree/four_slot.hpp"
#include "lockfree/msqueue.hpp"
#include "lockfree/nbw_buffer.hpp"
#include "lockfree/snapshot.hpp"
#include "rt/priority.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Msg {
  std::int64_t seq;
  std::int64_t payload[3];
};

constexpr int kReaders = 3;
constexpr std::int64_t kWrites = 20000;

struct Row {
  double write_ns = 0.0;
  double read_ns = 0.0;
  std::int64_t retries = 0;
};

template <typename WriteFn, typename ReadFn>
Row run_case(WriteFn&& do_write, ReadFn&& do_read) {
  using namespace lfrt;
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> read_ns{0}, reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      rt::pin_to_cpu(0);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto t0 = Clock::now();
        do_read(r);
        const auto t1 = Clock::now();
        read_ns.fetch_add(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count(),
            std::memory_order_relaxed);
        reads.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
      }
    });
  }

  rt::pin_to_cpu(0);
  const auto w0 = Clock::now();
  for (std::int64_t i = 1; i <= kWrites; ++i) {
    do_write(Msg{i, {i, 2 * i, 3 * i}});
    // Give the readers slots on the single CPU (the paper's model).
    if (i % 64 == 0) std::this_thread::yield();
  }
  const auto w1 = Clock::now();
  stop.store(true);
  for (auto& th : readers) th.join();

  Row row;
  row.write_ns =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(w1 - w0)
              .count()) /
      static_cast<double>(kWrites);
  row.read_ns = reads.load() > 0 ? static_cast<double>(read_ns.load()) /
                                       static_cast<double>(reads.load())
                                 : 0.0;
  return row;
}

}  // namespace

int main() {
  using namespace lfrt;
  bench::print_header("Extension", "synchronization mechanism landscape "
                                   "(1 writer, 3 readers, 1 CPU)");
  std::cout << kWrites << " writes per case\n\n";

  Table table({"mechanism", "write ns", "read ns", "retries",
               "space (msgs)", "a-priori knowledge"});

  {  // mutex-protected latest-value cell
    lockbased::MutexQueue<Msg> q;
    q.enqueue(Msg{0, {0, 0, 0}});
    const Row row = run_case(
        [&](const Msg& m) {
          q.dequeue();
          q.enqueue(m);
        },
        [&](int) {
          const auto m = q.dequeue();
          if (m) q.enqueue(*m);
        });
    table.add_row({"mutex cell", Table::num(row.write_ns, 0),
                   Table::num(row.read_ns, 0), "-", "1", "none"});
  }

  {  // lock-free MS queue used as a mailbox
    lockfree::MsQueue<Msg> q(64);
    const Row row = run_case(
        [&](const Msg& m) {
          // Mailbox semantics: drop the oldest message when full.
          while (!q.enqueue(m)) q.dequeue();
        },
        [&](int) { q.dequeue(); });
    table.add_row({"MS queue", Table::num(row.write_ns, 0),
                   Table::num(row.read_ns, 0),
                   std::to_string(q.stats().retry_count()), "64 (pool)",
                   "none"});
  }

  {  // NBW buffer
    lockfree::NbwBuffer<Msg> buf;
    const Row row = run_case([&](const Msg& m) { buf.write(m); },
                             [&](int) { (void)buf.read(); });
    table.add_row({"NBW buffer", Table::num(row.write_ns, 0),
                   Table::num(row.read_ns, 0),
                   std::to_string(buf.stats().retry_count()), "1",
                   "single writer"});
  }

  {  // atomic snapshot (one segment per "sensor", scanned whole)
    lockfree::AtomicSnapshot<Msg, 2> snap;
    const Row row = run_case([&](const Msg& m) { snap.update(0, m); },
                             [&](int) { (void)snap.scan(); });
    table.add_row({"snapshot scan", Table::num(row.write_ns, 0),
                   Table::num(row.read_ns, 0),
                   std::to_string(snap.stats().retry_count()), "2",
                   "single writer/segment"});
  }

  {  // Simpson four-slot SWMR replicas
    lockfree::WaitFreeSwmr<Msg> reg(kReaders);
    const Row row = run_case(
        [&](const Msg& m) { reg.write(m); },
        [&](int r) { (void)reg.read(static_cast<std::size_t>(r)); });
    table.add_row({"four-slot SWMR", Table::num(row.write_ns, 0),
                   Table::num(row.read_ns, 0), "0 (wait-free)",
                   std::to_string(reg.buffer_count()),
                   "reader count fixed"});
  }

  table.print();
  std::cout << "\nThe paper's Section 1.1 in one table: locks block,"
               " lock-free retries (bounded by Theorem 2), wait-free "
               "never retries but pays buffers and needs the party "
               "census up front — untenable for dynamic systems, which "
               "is why the paper builds on lock-free sharing.\n";
  return 0;
}
