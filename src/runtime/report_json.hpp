// RunReport <-> JSON round-tripping.
//
// Bench targets emit reports (and their contention heatmaps) as JSON so
// scripts can diff simulator output against executor output without
// linking the repo; from_json closes the loop, letting tests prove the
// emitted artifact carries the whole report (the ROADMAP's "report
// round-tripping" item).  Self-contained: a small recursive-descent
// parser in the .cpp, no third-party JSON dependency.
//
// Schema (all fields of runtime::RunReport, spelled as in the struct):
//
//   {
//     "counted_jobs": i, "completed": i, "aborted": i,
//     "accrued_utility": f, "max_possible_utility": f,
//     "dispatches": i, "sched_invocations": i, "sched_ops": i,
//     "total_retries": i, "total_blockings": i, "total_preemptions": i,
//     "jobs": [ { "id": i, "task": i, "arrival": i, "critical_abs": i,
//                 "state": i,            // JobState as its integer value
//                 "exec_actual": i, "retries": i, "blockings": i,
//                 "preemptions": i, "completion": i } ],
//     "contention": { "objects": i, "tasks": i,
//                     "cells": [ [ops, retries, blockings], ... ] }
//   }
//
// The cells array is dense row-major [object][task] — the heatmap: row
// sums give per-object totals, column sums per-task totals.  Doubles
// are printed with max_digits10 so from_json(to_json(r)) reproduces
// them bit-exactly; per-job transient progress fields (compute_done,
// held locks, ...) are intentionally not serialized — reports carry
// terminal records only, and from_json leaves those fields default.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "runtime/object_spec.hpp"
#include "runtime/run_report.hpp"

namespace lfrt::runtime {

/// Serialize the report (terminal per-job records + contention matrix
/// included) as a single JSON object.
std::string to_json(const RunReport& rep);

/// Parse a report serialized by to_json.  Unknown keys are ignored;
/// missing keys leave their fields default-initialized.  Throws
/// std::runtime_error on malformed JSON or mismatched structure (e.g. a
/// cells array whose length contradicts objects * tasks).
RunReport from_json(std::string_view json);

/// Serialize an object universe as a JSON array, one element per
/// ObjectId:
///
///   [ {"kind":"queue","impl":"mutex","shards":1,"adapt":false}, ... ]
///
/// kind/impl use the to_string spellings ("lock-free" | "mutex" |
/// "ticket" | "anderson" | "mcs"); shards and adapt are always written.
std::string object_specs_to_json(const std::vector<ObjectSpec>& specs);

/// Parse a universe serialized by object_specs_to_json.  `shards`
/// (default 1) and `adapt` (default false) may be omitted.  The legacy
/// impl spelling "lock-based" parses as "mutex", so pre-zoo artifacts
/// stay readable; any other unknown kind/impl string throws
/// std::runtime_error naming the offender and the accepted spellings.
std::vector<ObjectSpec> object_specs_from_json(std::string_view json);

}  // namespace lfrt::runtime
