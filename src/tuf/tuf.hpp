// Time/Utility Functions (TUFs) — Jensen et al. [15].
//
// A TUF expresses the utility of completing an activity as a function of
// its completion time (measured from the activity's arrival).  Deadlines
// are the special case of a binary-valued downward-step TUF.  Every TUF
// in this model has a single *critical time* C: the time at which utility
// drops to zero; utility is zero for all t > C (paper, Section 2).
//
// The paper's evaluation uses two TUF classes:
//   * homogeneous  — step shapes only (Figures 10, 12)
//   * heterogeneous — step + parabolic + linearly-decreasing (11, 13, 14)
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "support/time.hpp"

namespace lfrt {

/// Abstract time/utility function.
///
/// `utility(t)` is the utility accrued by completing the job `t` time
/// units after its arrival (its sojourn time).  Implementations must
/// guarantee: utility(t) >= 0 for all t, and utility(t) == 0 for
/// t > critical_time().
class Tuf {
 public:
  virtual ~Tuf() = default;

  /// Utility of completion at sojourn time t (t < 0 is treated as 0).
  virtual double utility(Time t) const = 0;

  /// The single critical time C: utility is zero strictly after C.
  virtual Time critical_time() const = 0;

  /// Maximum utility over [0, C].  For non-increasing TUFs this equals
  /// utility(0), the U_i(0) appearing in the AUR definitions.
  virtual double max_utility() const = 0;

  /// True if the shape is non-increasing on [0, C].  Theorem 3's
  /// "shorter sojourn => higher utility" statement requires this.
  virtual bool non_increasing() const = 0;

  /// Short human-readable descriptor ("step", "linear", ...).
  virtual std::string describe() const = 0;

  virtual std::unique_ptr<Tuf> clone() const = 0;

 protected:
  Tuf() = default;
  Tuf(const Tuf&) = default;
  Tuf& operator=(const Tuf&) = default;
};

/// Downward step TUF: utility `height` for 0 <= t <= C, zero after.
/// This is the classic hard/firm deadline (Figure 1(a)).
std::unique_ptr<Tuf> make_step_tuf(double height, Time critical);

/// Linearly decreasing TUF: height * (1 - t/C) on [0, C], zero after.
std::unique_ptr<Tuf> make_linear_tuf(double height, Time critical);

/// Downward parabolic TUF: height * (1 - (t/C)^2) on [0, C], zero after.
/// Decreasing, concave — the "parabolic" member of the paper's
/// heterogeneous class.
std::unique_ptr<Tuf> make_parabolic_tuf(double height, Time critical);

/// Increasing ramp TUF: height * t/C on [0, C], zero after.  Used in
/// tests of the Theorem-3 caveat that shorter sojourns do not always
/// raise utility for increasing TUFs.
std::unique_ptr<Tuf> make_ramp_tuf(double height, Time critical);

/// Exponentially decaying TUF: height * exp(-decay * t / C) on [0, C],
/// zero after.  Models intelligence/track data whose value halves on a
/// fixed timescale; `decay` is the number of e-foldings across [0, C].
std::unique_ptr<Tuf> make_exponential_tuf(double height, Time critical,
                                          double decay = 3.0);

/// Piecewise-linear TUF through (t_k, u_k) breakpoints.  The last
/// breakpoint fixes the critical time and must have zero utility; all
/// utilities must be non-negative.  Models the soft real-world shapes of
/// Figure 1(b) (e.g., the AWACS track-association TUF).
std::unique_ptr<Tuf> make_piecewise_tuf(
    std::vector<std::pair<Time, double>> breakpoints);

}  // namespace lfrt
