// Lock-based counterparts of the lock-free structures.
//
// These serialize access by mutual exclusion, exactly the class of
// mechanism the paper's lock-based RUA manages.  Contention accounting
// (how often an acquire found the lock held) lets the rt-layer
// microbenchmarks separate the raw critical-section cost from the
// blocking cost, mirroring the r-vs-s decomposition of Section 5.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "runtime/object_stats.hpp"

namespace lfrt::lockbased {

/// Unbounded mutex-protected MPMC FIFO.
template <typename T>
class MutexQueue {
 public:
  void enqueue(const T& value) {
    Guard g(*this);
    q_.push_back(value);
    stats_.record_op();
  }

  std::optional<T> dequeue() {
    Guard g(*this);
    stats_.record_op();
    if (q_.empty()) return std::nullopt;
    T value = q_.front();
    q_.pop_front();
    return value;
  }

  bool empty() const {
    Guard g(const_cast<MutexQueue&>(*this));
    return q_.empty();
  }

  const runtime::ObjectStats& stats() const { return stats_; }

 private:
  /// Lock guard that records whether the acquire contended.
  class Guard {
   public:
    explicit Guard(MutexQueue& q) : q_(q) {
      if (q_.mutex_.try_lock()) {
        q_.stats_.record_acquisition(/*was_contended=*/false);
      } else {
        q_.stats_.record_acquisition(/*was_contended=*/true);
        q_.mutex_.lock();
      }
    }
    ~Guard() { q_.mutex_.unlock(); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    MutexQueue& q_;
  };

  mutable std::mutex mutex_;
  std::deque<T> q_;
  runtime::ObjectStats stats_;
};

/// Unbounded mutex-protected MPMC LIFO.
template <typename T>
class MutexStack {
 public:
  void push(const T& value) {
    record_acquire();
    std::lock_guard<std::mutex> g(mutex_);
    s_.push_back(value);
    stats_.record_op();
  }

  std::optional<T> pop() {
    record_acquire();
    std::lock_guard<std::mutex> g(mutex_);
    stats_.record_op();
    if (s_.empty()) return std::nullopt;
    T value = s_.back();
    s_.pop_back();
    return value;
  }

  bool empty() const {
    std::lock_guard<std::mutex> g(mutex_);
    return s_.empty();
  }

  const runtime::ObjectStats& stats() const { return stats_; }

 private:
  void record_acquire() {
    if (mutex_.try_lock()) {
      mutex_.unlock();
      stats_.record_acquisition(/*was_contended=*/false);
    } else {
      stats_.record_acquisition(/*was_contended=*/true);
    }
  }

  mutable std::mutex mutex_;
  std::deque<T> s_;
  runtime::ObjectStats stats_;
};

}  // namespace lfrt::lockbased
