// Tests for Simpson's four-slot register and the replicated wait-free
// SWMR construction.
#include "lockfree/four_slot.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "support/check.hpp"

namespace lfrt::lockfree {
namespace {

TEST(FourSlot, SequentialReadBack) {
  FourSlot<int> reg(42);
  EXPECT_EQ(reg.read(), 42);
  reg.write(7);
  EXPECT_EQ(reg.read(), 7);
  reg.write(8);
  reg.write(9);
  EXPECT_EQ(reg.read(), 9);
}

TEST(FourSlot, NoTearingUnderConcurrency) {
  struct Pair {
    std::int64_t a;
    std::int64_t b;  // invariant: b == -a
  };
  FourSlot<Pair> reg({0, 0});
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (std::int64_t i = 1; i <= 200000; ++i) reg.write({i, -i});
    stop.store(true);
  });
  std::int64_t last = 0;
  while (!stop.load()) {
    const Pair p = reg.read();
    ASSERT_EQ(p.a, -p.b) << "torn read";
    // Freshness/monotonicity: values never run backwards for this
    // reader (the four-slot register is a regular register).
    ASSERT_GE(p.a, last);
    last = p.a;
  }
  writer.join();
  EXPECT_EQ(reg.read().a, 200000);
}

TEST(WaitFreeSwmr, FanOutToAllReaders) {
  WaitFreeSwmr<int> reg(3, 5);
  for (std::size_t r = 0; r < 3; ++r) EXPECT_EQ(reg.read(r), 5);
  reg.write(11);
  for (std::size_t r = 0; r < 3; ++r) EXPECT_EQ(reg.read(r), 11);
  EXPECT_EQ(reg.readers(), 3u);
  EXPECT_EQ(reg.buffer_count(), 12u);  // the space cost of wait-freedom
}

TEST(WaitFreeSwmr, RequiresAtLeastOneReader) {
  EXPECT_THROW(WaitFreeSwmr<int>(0), InvariantViolation);
}

TEST(WaitFreeSwmr, ConcurrentReadersNeverTearNeverRetry) {
  struct Triple {
    std::int64_t x, y, z;  // y = 2x, z = 3x
  };
  WaitFreeSwmr<Triple> reg(2, {0, 0, 0});
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (std::int64_t i = 1; i <= 100000; ++i) reg.write({i, 2 * i, 3 * i});
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      std::int64_t last = 0;
      while (!stop.load()) {
        const Triple t = reg.read(r);
        ASSERT_EQ(t.y, 2 * t.x);
        ASSERT_EQ(t.z, 3 * t.x);
        ASSERT_GE(t.x, last);
        last = t.x;
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(reg.read(0).x, 100000);
  EXPECT_EQ(reg.read(1).x, 100000);
}

}  // namespace
}  // namespace lfrt::lockfree
