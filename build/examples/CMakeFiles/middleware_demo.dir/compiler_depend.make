# Empty compiler generated dependencies file for middleware_demo.
# This may be replaced when dependencies are built.
