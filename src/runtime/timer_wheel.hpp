// Hashed timer wheel for deadline management at streaming scale.
//
// The executor's scheduling loop used to find the next abort deadline
// by scanning every live job per wakeup — O(live) per pass, which is
// exactly the kind of hidden linear walk that caps a service at
// thousands of jobs.  A hashed wheel makes schedule/advance/next all
// O(1) amortized in the common case: a deadline hashes to the slot
// `(deadline / granularity) % slots`, advance() walks only the slots
// the clock actually crossed, and deadlines beyond one wheel horizon
// (granularity * slots) park in an overflow list that is cascaded back
// in only when the tracked overflow minimum comes within reach.
//
// Firing is per-entry-checked (an entry fires iff deadline <= now), so
// the wheel's bucketing can never fire early; granularity only bounds
// how much work one advance() does, not accuracy.  Within one slot the
// firing order is unspecified.
//
// TimerWheel is single-threaded (the executor drives one under its
// scheduler mutex).  ShardedTimerWheel wraps N independent wheels
// behind per-shard mutexes for multi-producer use — runtime::Service
// gives each ingest lane its own shard so open-loop arrival drivers
// never contend on a shared timer structure.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "support/check.hpp"
#include "support/time.hpp"

namespace lfrt::runtime {

/// Single-threaded hashed timer wheel holding payloads of type T.
template <typename T>
class TimerWheel {
 public:
  /// `granularity` is the slot width in ns, `slots` the wheel size;
  /// the horizon (granularity * slots) is the furthest deadline that
  /// lives in a slot — anything later overflows until it comes near.
  TimerWheel(Time granularity, std::size_t slots)
      : granularity_(granularity),
        horizon_(granularity * static_cast<Time>(slots)),
        buckets_(slots) {
    LFRT_CHECK_MSG(granularity >= 1, "timer wheel granularity must be >= 1ns");
    LFRT_CHECK_MSG(slots >= 2, "timer wheel needs at least 2 slots");
  }

  /// Register `payload` to fire once `advance(now)` reaches `deadline`.
  /// Overdue deadlines (already <= the wheel's cursor) are accepted and
  /// fire on the next advance.
  void schedule(Time deadline, T payload) {
    if (deadline < cursor_) deadline = cursor_;
    ++count_;
    if (fits_in_slot(deadline)) {
      bucket_at(deadline).push_back(Entry{deadline, std::move(payload)});
    } else {
      if (deadline < overflow_min_) overflow_min_ = deadline;
      overflow_.push_back(Entry{deadline, std::move(payload)});
    }
  }

  /// Move the clock to `now`, invoking `fire(deadline, payload)` for
  /// every entry with deadline <= now.  Entries are detached from the
  /// wheel *before* any callback runs, so fire() may re-enter
  /// schedule() (chained timers); entries scheduled during the
  /// callbacks fire on the NEXT advance even if already due.  Returns
  /// the number fired.
  template <typename Fn>
  std::size_t advance(Time now, Fn&& fire) {
    if (now < cursor_) return 0;
    due_.clear();
    // Walk slots from the cursor to now.  If the jump spans a full
    // revolution every slot would be visited anyway — sweep them all
    // once and stop stepping.
    for (;;) {
      collect_due(bucket_at(cursor_), now);
      const Time boundary = (cursor_ / granularity_ + 1) * granularity_;
      if (boundary > now) {
        cursor_ = now;
        break;
      }
      cursor_ = boundary;
      if (now - cursor_ >= horizon_) {
        for (auto& b : buckets_) collect_due(b, now);
        cursor_ = now;
        break;
      }
    }
    // Cascade: overflow entries now within the horizon move to slots
    // (or straight to due_ if the clock already passed them).
    if (!overflow_.empty() && overflow_min_ - cursor_ < horizon_) {
      std::size_t kept = 0;
      Time new_min = kTimeNever;
      for (auto& e : overflow_) {
        if (e.deadline <= now) {
          due_.push_back(std::move(e));
        } else if (fits_in_slot(e.deadline)) {
          bucket_at(e.deadline).push_back(std::move(e));
        } else {
          if (e.deadline < new_min) new_min = e.deadline;
          overflow_[kept++] = std::move(e);
        }
      }
      overflow_.resize(kept);
      overflow_min_ = new_min;
    }
    const std::size_t fired = due_.size();
    count_ -= static_cast<std::int64_t>(fired);
    for (auto& e : due_) fire(e.deadline, std::move(e.payload));
    due_.clear();
    return fired;
  }

  /// Earliest pending deadline, kTimeNever when empty.  Exact: slot
  /// placement is gated on TICK distance (< slots) from the cursor, so
  /// every slot holds entries of exactly one tick, scan distance from
  /// the cursor's slot is monotone in deadline, and the first
  /// non-empty slot holds the minimum (modulo the overflow list's
  /// tracked minimum).
  Time next_deadline() const {
    Time best = overflow_.empty() ? kTimeNever : overflow_min_;
    const std::size_t start =
        static_cast<std::size_t>(cursor_ / granularity_) % buckets_.size();
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      const auto& b = buckets_[(start + i) % buckets_.size()];
      if (b.empty()) continue;
      Time slot_min = kTimeNever;
      for (const auto& e : b)
        if (e.deadline < slot_min) slot_min = e.deadline;
      return slot_min < best ? slot_min : best;
    }
    return best;
  }

  std::int64_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  Time horizon() const { return horizon_; }

 private:
  struct Entry {
    Time deadline;
    T payload;
  };

  std::vector<Entry>& bucket_at(Time t) {
    return buckets_[static_cast<std::size_t>(t / granularity_) %
                    buckets_.size()];
  }

  /// Slot placement predicate.  Tick distance — not ns distance — must
  /// be under one revolution: with a mid-slot cursor, a deadline can be
  /// < horizon ns away yet a full `slots` ticks ahead, which would hash
  /// it into the cursor's own slot and break next_deadline()'s
  /// first-non-empty-slot minimum scan (caught by the randomized oracle
  /// test).  Requires deadline >= cursor_.
  bool fits_in_slot(Time deadline) const {
    return deadline / granularity_ - cursor_ / granularity_ <
           static_cast<Time>(buckets_.size());
  }

  void collect_due(std::vector<Entry>& bucket, Time now) {
    std::size_t kept = 0;
    for (auto& e : bucket) {
      if (e.deadline <= now)
        due_.push_back(std::move(e));
      else
        bucket[kept++] = std::move(e);
    }
    bucket.resize(kept);
  }

  const Time granularity_;
  const Time horizon_;
  std::vector<std::vector<Entry>> buckets_;
  std::vector<Entry> overflow_;
  Time overflow_min_ = kTimeNever;
  std::vector<Entry> due_;  ///< advance() scratch, capacity reused
  Time cursor_ = 0;
  std::int64_t count_ = 0;
};

/// N independent wheels behind per-shard mutexes.  Shards share
/// nothing — each has its own cursor — so concurrent producers driving
/// different shards (one per Service ingest lane) never contend.
template <typename T>
class ShardedTimerWheel {
 public:
  ShardedTimerWheel(std::size_t shards, Time granularity, std::size_t slots) {
    LFRT_CHECK_MSG(shards >= 1, "sharded timer wheel needs >= 1 shard");
    shards_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s)
      shards_.push_back(std::make_unique<Shard>(granularity, slots));
  }

  std::size_t shard_count() const { return shards_.size(); }

  void schedule(std::size_t shard, Time deadline, T payload) {
    Shard& s = *shards_[shard % shards_.size()];
    std::lock_guard<std::mutex> lock(s.mu);
    s.wheel.schedule(deadline, std::move(payload));
  }

  template <typename Fn>
  std::size_t advance(std::size_t shard, Time now, Fn&& fire) {
    Shard& s = *shards_[shard % shards_.size()];
    std::lock_guard<std::mutex> lock(s.mu);
    return s.wheel.advance(now, std::forward<Fn>(fire));
  }

  Time next_deadline(std::size_t shard) const {
    const Shard& s = *shards_[shard % shards_.size()];
    std::lock_guard<std::mutex> lock(s.mu);
    return s.wheel.next_deadline();
  }

  /// Earliest deadline across all shards (kTimeNever when all empty).
  Time next_deadline_all() const {
    Time best = kTimeNever;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mu);
      const Time d = s->wheel.next_deadline();
      if (d < best) best = d;
    }
    return best;
  }

  std::int64_t size() const {
    std::int64_t n = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mu);
      n += s->wheel.size();
    }
    return n;
  }

 private:
  struct Shard {
    Shard(Time granularity, std::size_t slots) : wheel(granularity, slots) {}
    mutable std::mutex mu;
    TimerWheel<T> wheel;
  };
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace lfrt::runtime
