// Object × task contention matrix — where retries and blocking
// episodes actually landed.
//
// Theorem 2 bounds each task's retries by summing interference over
// *all* accesses to *any* object; the matrix resolves that aggregate to
// the (object, task) pair so a heatmap can show where the f_i events
// concentrate.  Filled by runtime::ObjectRegistry on the executor and
// directly by the simulator's access bookkeeping; carried on every
// runtime::RunReport and serialized by report_json.
#pragma once

#include <cstdint>
#include <vector>

namespace lfrt::runtime {

/// One (object, task) cell of the contention heatmap.
struct ContentionCell {
  std::int64_t ops = 0;        ///< completed accesses task made to object
  std::int64_t retries = 0;    ///< lock-free retry events (f_i share)
  std::int64_t blockings = 0;  ///< lock-based contended acquisitions (n_i)

  friend bool operator==(const ContentionCell&,
                         const ContentionCell&) = default;
};

/// Dense row-major [object][task] heatmap.  Empty (0 × 0) on reports
/// from runs that predate per-object attribution.
struct ContentionMatrix {
  std::int32_t objects = 0;
  std::int32_t tasks = 0;
  std::vector<ContentionCell> cells;  ///< size == objects * tasks

  /// Per-object active stripe count at snapshot time (the sharding
  /// dimension): size == objects when the run's substrate reports it,
  /// empty on legacy reports.  Cells stay per *object* — every stripe
  /// of a sharded object feeds the same row, which is what keeps the
  /// three-way attribution sums exact across promote/demote.
  std::vector<std::int32_t> shard_counts;

  ContentionMatrix() = default;
  ContentionMatrix(std::int32_t object_count, std::int32_t task_count)
      : objects(object_count),
        tasks(task_count),
        cells(static_cast<std::size_t>(object_count) *
              static_cast<std::size_t>(task_count)) {}

  bool empty() const { return cells.empty(); }

  ContentionCell& at(std::int32_t object, std::int32_t task) {
    return cells[static_cast<std::size_t>(object) *
                     static_cast<std::size_t>(tasks) +
                 static_cast<std::size_t>(task)];
  }
  const ContentionCell& at(std::int32_t object, std::int32_t task) const {
    return cells[static_cast<std::size_t>(object) *
                     static_cast<std::size_t>(tasks) +
                 static_cast<std::size_t>(task)];
  }

  /// Sum of one column (all objects, one task).
  ContentionCell task_totals(std::int32_t task) const {
    ContentionCell sum;
    for (std::int32_t o = 0; o < objects; ++o) {
      const ContentionCell& c = at(o, task);
      sum.ops += c.ops;
      sum.retries += c.retries;
      sum.blockings += c.blockings;
    }
    return sum;
  }

  /// Sum of one row (one object, all tasks).
  ContentionCell object_totals(std::int32_t object) const {
    ContentionCell sum;
    for (std::int32_t t = 0; t < tasks; ++t) {
      const ContentionCell& c = at(object, t);
      sum.ops += c.ops;
      sum.retries += c.retries;
      sum.blockings += c.blockings;
    }
    return sum;
  }

  /// Grand total over every cell.
  ContentionCell totals() const {
    ContentionCell sum;
    for (const ContentionCell& c : cells) {
      sum.ops += c.ops;
      sum.retries += c.retries;
      sum.blockings += c.blockings;
    }
    return sum;
  }

  friend bool operator==(const ContentionMatrix&,
                         const ContentionMatrix&) = default;
};

}  // namespace lfrt::runtime
