// Middleware-level utility-accrual executor on real POSIX threads.
//
// The paper's implementation study ran RUA inside the *meta-scheduler*
// framework of Li et al. [18]: application-level real-time scheduling
// layered on a POSIX RTOS.  This is that substrate: an Executor owns a
// scheduling thread that runs a sched::Scheduler (RUA, EDF, ...) at
// every scheduling event, and job bodies — ordinary C++ callables —
// execute on worker threads that yield control at *checkpoints*
// (cooperative preemption, exactly the application-level discipline a
// middleware scheduler imposes).  Critical-time expiry raises an
// abort-exception: the body's next checkpoint throws JobAborted, the
// job's abort handler runs, and the job accrues zero utility
// (Section 3.5's abort model, for real).
//
// Bodies may share objects through the lock-free or lock-based
// structures in src/lockfree and src/lockbased; retry/contention
// statistics come from those structures.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "runtime/run_report.hpp"
#include "support/time.hpp"
#include "task/task.hpp"

namespace lfrt::sched {
class Scheduler;
}

namespace lfrt::rt {

/// Thrown out of JobContext::checkpoint when the job has been aborted;
/// the executor catches it after the abort handler has run.
class JobAborted {};

/// Handle a running body uses to cooperate with the scheduler.
class JobContext {
 public:
  /// Preemption/abort point.  Blocks while the job is preempted;
  /// throws JobAborted once the job's critical time has expired.
  /// Bodies should call this between work quanta.
  virtual void checkpoint() = 0;

  /// True once an abort has been requested (checkpoint would throw).
  virtual bool aborted() const = 0;

  virtual JobId id() const = 0;

 protected:
  ~JobContext() = default;
};

/// What to run for one job.
struct RtJob {
  /// Originating task, when the job was lowered from a TaskSet
  /// (runtime::run_on_executor); -1 for free-standing jobs.  Flows into
  /// the report's per-job records and per-task breakdowns.
  TaskId task = -1;

  /// Time constraint; utility accrues at U(sojourn) on completion.
  std::shared_ptr<const Tuf> tuf;

  /// Execution-time estimate handed to the scheduler (the paper's
  /// model: execution times presented to the scheduler are estimates).
  Time expected_exec = 0;

  /// The body.  Must call ctx.checkpoint() between work quanta.
  std::function<void(JobContext&)> body;

  /// Optional compensation run after an abort (Section 3.5's handler).
  std::function<void()> abort_handler;
};

/// Aggregate outcome of an Executor run.  The shared job-lifecycle
/// accounting (AUR/CMR, per-job terminal records with real-clock
/// sojourns, retry/blocking tallies plumbed from the shared structures
/// via runtime::ScopedAccessSink, per-task breakdowns) lives in
/// runtime::RunReport — the same shape sim::SimReport extends, so the
/// two substrates cross-validate (bench/ext_executor_validation).
/// counted_jobs == submitted: shutdown() drains every job to a terminal
/// state.
struct ExecutorReport : runtime::RunReport {
  std::int64_t submitted = 0;
};

/// Middleware UA scheduler over real threads.
///
/// Thread model: one scheduling thread plus one worker per in-flight
/// job; exactly one worker executes at a time (the dispatched one), so
/// execution is serialized the way a uniprocessor RTOS would — which is
/// also what makes runs reproducible enough to test.
class Executor {
 public:
  /// `scheduler` must outlive the executor.
  explicit Executor(const sched::Scheduler& scheduler);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Submit a job; its arrival is "now".  Thread-safe.
  JobId submit(RtJob job);

  /// Block until every submitted job has completed or aborted.
  void drain();

  /// Drain, stop the scheduling thread, and return the tallies.
  ExecutorReport shutdown();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace lfrt::rt
