file(REMOVE_RECURSE
  "CMakeFiles/rover_overload.dir/rover_overload.cpp.o"
  "CMakeFiles/rover_overload.dir/rover_overload.cpp.o.d"
  "rover_overload"
  "rover_overload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rover_overload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
