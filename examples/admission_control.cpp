// Admission control: the UAM machinery at a system boundary.
//
// A ground station accepts task registrations at runtime.  Each request
// declares its UAM arrival contract and execution demand; the station
// admits it only if the whole set stays feasible per the demand-bound
// test (analysis::uam_edf_feasible).  At runtime, per-task UamGates
// police the declared contracts, and a misbehaving source's excess
// arrivals are shed at the boundary instead of overloading the
// scheduler.  Finally the admitted set runs in the simulator and the
// feasibility verdict is checked against reality.
#include <iostream>

#include "analysis/bounds.hpp"
#include "sched/rua.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "uam/uam.hpp"

using namespace lfrt;

int main() {
  struct Request {
    const char* name;
    Time exec;
    Time critical;
    std::int64_t burst;  // UAM a_i, W = critical
  };
  const Request requests[] = {
      {"attitude control", usec(200), msec(2), 1},
      {"telemetry frame", usec(800), msec(10), 1},
      {"image compress", msec(3), msec(20), 1},
      {"science burst", msec(2), msec(15), 2},
      {"diagnostics", msec(6), msec(25), 2},  // the one that won't fit
      {"beacon", usec(100), msec(5), 1},
  };

  TaskSet admitted;
  admitted.object_count = 1;
  Table table({"request", "a_i", "C_i (ms)", "u_i (ms)", "verdict",
               "slack (us)"});

  TaskId next_id = 0;
  for (const Request& r : requests) {
    TaskParams p;
    p.id = next_id;
    p.exec_time = r.exec;
    p.tuf = make_step_tuf(10.0, r.critical);
    p.arrival = UamSpec{1, r.burst, r.critical};

    TaskSet trial = admitted;
    trial.tasks.push_back(p);
    trial.validate();

    Time slack = 0;
    const bool ok = analysis::uam_edf_feasible(trial, 0, &slack);
    table.add_row({r.name, std::to_string(r.burst),
                   Table::num(to_msec(r.critical), 1),
                   Table::num(to_msec(r.exec), 2),
                   ok ? "ADMIT" : "reject",
                   ok ? Table::num(to_usec(slack), 0) : "-"});
    if (ok) {
      admitted = std::move(trial);
      ++next_id;
    }
  }
  table.print();
  std::cout << "\nadmitted " << admitted.tasks.size() << "/6 requests; "
            << "worst-case load AL = "
            << Table::num(admitted.approximate_load(), 2) << "\n\n";

  // Run the admitted set with adversarial arrivals: the analysis is a
  // sufficient test, so zero misses are guaranteed.
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  sim::SimConfig cfg;
  cfg.mode = sim::ShareMode::kIdeal;
  cfg.horizon = sec(1);
  sim::Simulator sim(admitted, rua, cfg);
  for (const auto& t : admitted.tasks)
    sim.set_arrivals(t.id, arrivals::adversarial(t.arrival, 0, cfg.horizon));
  const auto rep = sim.run();
  std::cout << "adversarial-arrival run: " << rep.completed << "/"
            << rep.counted_jobs << " jobs met their critical times (CMR "
            << Table::num(rep.cmr(), 3) << ")\n\n";

  // Boundary enforcement: a source that doubles its declared burst rate
  // is clipped back to contract by its gate.
  const auto& noisy = admitted.tasks.back();
  UamSpec violating = noisy.arrival;
  violating.max_per_window *= 2;
  Rng rng(7);
  const auto proposals =
      arrivals::random_conformant(violating, sec(1), rng);
  UamGate gate(noisy.arrival);
  std::int64_t shed = 0;
  for (Time t : proposals)
    if (!gate.offer(t)) ++shed;
  std::cout << "contract enforcement for '" << "task " << noisy.id
            << "': " << gate.admitted() << " arrivals admitted, " << shed
            << " shed at the boundary (declared a="
            << noisy.arrival.max_per_window << ", offered a="
            << violating.max_per_window << ")\n";
  std::cout << "\nThe UAM contract is what makes Theorem 2's retry bound "
               "and the demand-bound test enforceable: the gate turns an "
               "open environment into the bounded adversary the analysis "
               "assumes.\n";
  return 0;
}
