#include "runtime/shared_object.hpp"

#include "lockbased/mutex_queue.hpp"
#include "lockbased/mutex_rw.hpp"
#include "lockfree/msqueue.hpp"
#include "lockfree/snapshot.hpp"
#include "lockfree/treiber_stack.hpp"
#include "lockfree/nbw_buffer.hpp"
#include "support/check.hpp"

namespace lfrt::runtime {

// --- ObjectRegistry ---

ObjectRegistry::ObjectRegistry(std::int32_t object_count,
                               std::int32_t task_count)
    : objects_(object_count),
      tasks_(task_count),
      cells_(std::make_unique<AtomicAccessCell[]>(
          static_cast<std::size_t>(object_count) *
          static_cast<std::size_t>(task_count))) {}

AtomicAccessCell* ObjectRegistry::cell(ObjectId object, TaskId task) {
  if (object < 0 || object >= objects_ || task < 0 || task >= tasks_)
    return nullptr;
  return &cells_[static_cast<std::size_t>(object) *
                     static_cast<std::size_t>(tasks_) +
                 static_cast<std::size_t>(task)];
}

ContentionMatrix ObjectRegistry::to_matrix() const {
  ContentionMatrix m(objects_, tasks_);
  for (std::int32_t o = 0; o < objects_; ++o) {
    for (std::int32_t t = 0; t < tasks_; ++t) {
      const AtomicAccessCell& c =
          cells_[static_cast<std::size_t>(o) * static_cast<std::size_t>(tasks_) +
                 static_cast<std::size_t>(t)];
      ContentionCell& out = m.at(o, t);
      out.ops = c.ops.load(std::memory_order_relaxed);
      out.retries = c.retries.load(std::memory_order_relaxed);
      out.blockings = c.blockings.load(std::memory_order_relaxed);
    }
  }
  return m;
}

// --- SharedObject ---

SharedObject::SharedObject(ObjectSpec spec, std::size_t queue_capacity)
    : spec_(spec) {
  const bool lf = spec.impl == ObjectImpl::kLockFree;
  switch (spec.kind) {
    case ObjectKind::kQueue:
      if (lf)
        lf_queue_ = std::make_unique<lockfree::MsQueue<int>>(queue_capacity);
      else
        lb_queue_ = std::make_unique<lockbased::MutexQueue<int>>();
      break;
    case ObjectKind::kStack:
      if (lf)
        lf_stack_ =
            std::make_unique<lockfree::TreiberStack<int>>(queue_capacity);
      else
        lb_stack_ = std::make_unique<lockbased::MutexStack<int>>();
      break;
    case ObjectKind::kBuffer:
      if (lf)
        lf_buffer_ = std::make_unique<lockfree::NbwBuffer<int>>();
      else
        lb_buffer_ = std::make_unique<lockbased::MutexBuffer<int>>();
      break;
    case ObjectKind::kSnapshot:
      if (lf)
        lf_snapshot_ = std::make_unique<
            lockfree::AtomicSnapshot<int, kSnapshotSegments>>();
      else
        lb_snapshot_ =
            std::make_unique<lockbased::MutexSnapshot<int, kSnapshotSegments>>();
      break;
  }
}

SharedObject::~SharedObject() = default;

const ObjectStats& SharedObject::stats() const {
  if (lf_queue_) return lf_queue_->stats();
  if (lf_stack_) return lf_stack_->stats();
  if (lf_buffer_) return lf_buffer_->stats();
  if (lf_snapshot_) return lf_snapshot_->stats();
  if (lb_queue_) return lb_queue_->stats();
  if (lb_stack_) return lb_stack_->stats();
  if (lb_buffer_) return lb_buffer_->stats();
  return lb_snapshot_->stats();
}

void SharedObject::access(AccessOp op, TaskId task, JobId job,
                          const std::function<void()>& checkpoint,
                          AtomicAccessCell* cell) {
  ScopedCellSink sink(cell);
  const int v = static_cast<int>(job);

  switch (spec_.kind) {
    case ObjectKind::kQueue:
    case ObjectKind::kStack: {
      if (op == AccessOp::kWrite) {
        // Insert, expose the mid-access abort window, remove.  A throw
        // from the checkpoint rolls the insert back first, so occupancy
        // stays balanced without an abort handler.
        auto push = [&] {
          // Full-pool inserts are dropped, as the pre-refactor adapter
          // did; capacity is sized so balanced accesses never fill it.
          if (lf_queue_) (void)lf_queue_->enqueue(v);
          else if (lb_queue_) lb_queue_->enqueue(v);
          else if (lf_stack_) (void)lf_stack_->push(v);
          else lb_stack_->push(v);
        };
        auto pop = [&] {
          if (lf_queue_) (void)lf_queue_->dequeue();
          else if (lb_queue_) (void)lb_queue_->dequeue();
          else if (lf_stack_) (void)lf_stack_->pop();
          else (void)lb_stack_->pop();
        };
        push();
        try {
          checkpoint();
        } catch (...) {
          pop();
          throw;
        }
        pop();
      } else {
        // Reads probe emptiness: a constant-time observation that still
        // exercises the structure's shared state under interference.
        if (lf_queue_) (void)lf_queue_->empty();
        else if (lb_queue_) (void)lb_queue_->empty();
        else if (lf_stack_) (void)lf_stack_->empty();
        else (void)lb_stack_->empty();
        checkpoint();
      }
      break;
    }

    case ObjectKind::kBuffer: {
      if (op == AccessOp::kWrite) {
        if (lf_buffer_) {
          // Serialize writers to uphold NBW's single-writer
          // precondition; the guard is released before the checkpoint.
          std::lock_guard<std::mutex> g(writer_mu_);
          lf_buffer_->write(v);
        } else {
          lb_buffer_->write(v);
        }
      } else {
        if (lf_buffer_) (void)lf_buffer_->read();
        else (void)lb_buffer_->read();
      }
      checkpoint();
      break;
    }

    case ObjectKind::kSnapshot: {
      const std::size_t seg =
          static_cast<std::size_t>(task < 0 ? 0 : task) % kSnapshotSegments;
      if (op == AccessOp::kWrite) {
        if (lf_snapshot_) {
          // Same single-writer scaffolding as the buffer: updates
          // serialize (even to different segments) so concurrent jobs
          // of one task can't co-write a segment.
          std::lock_guard<std::mutex> g(writer_mu_);
          lf_snapshot_->update(seg, v);
        } else {
          lb_snapshot_->update(seg, v);
        }
      } else {
        if (lf_snapshot_) (void)lf_snapshot_->scan();
        else (void)lb_snapshot_->scan();
      }
      checkpoint();
      break;
    }
  }

  if (cell != nullptr) cell->ops.fetch_add(1, std::memory_order_relaxed);
}

// --- SharedObjectSet ---

SharedObjectSet::SharedObjectSet(std::vector<ObjectSpec> specs,
                                 std::int32_t task_count,
                                 std::size_t queue_capacity)
    : specs_(std::move(specs)),
      registry_(static_cast<std::int32_t>(specs_.size()), task_count) {
  objects_.reserve(specs_.size());
  for (const ObjectSpec& s : specs_)
    objects_.push_back(std::make_unique<SharedObject>(s, queue_capacity));
}

void SharedObjectSet::access(ObjectId o, AccessOp op, TaskId task, JobId job,
                             const std::function<void()>& checkpoint) {
  LFRT_CHECK_MSG(o >= 0 && o < object_count(), "object id out of range");
  objects_[static_cast<std::size_t>(o)]->access(op, task, job, checkpoint,
                                                registry_.cell(o, task));
}

}  // namespace lfrt::runtime
