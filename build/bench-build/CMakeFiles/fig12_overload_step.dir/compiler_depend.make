# Empty compiler generated dependencies file for fig12_overload_step.
# This may be replaced when dependencies are built.
