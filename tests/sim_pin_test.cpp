// Simulator regression pins: full-report fingerprints of fixed-seed
// runs across every sharing mode, nested/deadlock workloads, and
// multiprocessor configurations.
//
// The expected values below were captured from the pre-slab simulator
// (the std::unordered_map<JobId, Job> job table) and pin the dense-slab
// rewrite to bit-identical event-loop behaviour: any change to event
// ordering, dispatch, retry/blocking accounting, or abort handling
// shows up as a fingerprint mismatch.  Integer counters must match
// exactly; AUR is compared to 1e-9 (the report-accumulation order over
// terminal jobs is not part of the pinned behaviour).
#include <gtest/gtest.h>

#include <ostream>

#include "sched/edf.hpp"
#include "sched/rua.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"
#include "uam/uam.hpp"
#include "workload/workload.hpp"

namespace lfrt {
namespace {

struct Fingerprint {
  std::int64_t counted = 0;
  std::int64_t completed = 0;
  std::int64_t aborted = 0;
  std::int64_t retries = 0;
  std::int64_t blockings = 0;
  std::int64_t preemptions = 0;
  std::int64_t invocations = 0;
  std::int64_t ops = 0;
  std::int64_t deadlocks = 0;
  std::int64_t job_records = 0;
  std::int64_t sojourn_sum = 0;  ///< sum of completed jobs' sojourns (ns)
  double aur = 0.0;

  friend std::ostream& operator<<(std::ostream& os, const Fingerprint& f) {
    return os << "{" << f.counted << ", " << f.completed << ", "
              << f.aborted << ", " << f.retries << ", " << f.blockings
              << ", " << f.preemptions << ", " << f.invocations << ", "
              << f.ops << ", " << f.deadlocks << ", " << f.job_records
              << ", " << f.sojourn_sum << ", " << f.aur << "}";
  }
};

Fingerprint fingerprint(const sim::SimReport& r) {
  Fingerprint f;
  f.counted = r.counted_jobs;
  f.completed = r.completed;
  f.aborted = r.aborted;
  f.retries = r.total_retries;
  f.blockings = r.total_blockings;
  f.preemptions = r.total_preemptions;
  f.invocations = r.sched_invocations;
  f.ops = r.sched_ops;
  f.deadlocks = r.deadlocks_resolved;
  f.job_records = static_cast<std::int64_t>(r.jobs.size());
  for (const Job& j : r.jobs)
    if (j.state == JobState::kCompleted) f.sojourn_sum += j.sojourn();
  f.aur = r.aur();
  return f;
}

void expect_eq(const Fingerprint& got, const Fingerprint& want) {
  EXPECT_EQ(got.counted, want.counted);
  EXPECT_EQ(got.completed, want.completed);
  EXPECT_EQ(got.aborted, want.aborted);
  EXPECT_EQ(got.retries, want.retries);
  EXPECT_EQ(got.blockings, want.blockings);
  EXPECT_EQ(got.preemptions, want.preemptions);
  EXPECT_EQ(got.invocations, want.invocations);
  EXPECT_EQ(got.ops, want.ops);
  EXPECT_EQ(got.deadlocks, want.deadlocks);
  EXPECT_EQ(got.job_records, want.job_records);
  EXPECT_EQ(got.sojourn_sum, want.sojourn_sum);
  EXPECT_NEAR(got.aur, want.aur, 1e-9);
  // On any mismatch, print the whole actual fingerprint so it can be
  // re-pinned deliberately after an *intentional* behaviour change.
  if (::testing::Test::HasNonfatalFailure())
    ADD_FAILURE() << "actual fingerprint: " << got;
}

/// The fig09-shaped workload of the determinism suite.
TaskSet fig09_like_taskset() {
  workload::WorkloadSpec spec;
  spec.task_count = 10;
  spec.object_count = 10;
  spec.accesses_per_job = 2;
  spec.avg_exec = usec(100);
  spec.load = 0.9;
  spec.tuf_class = workload::TufClass::kStep;
  spec.seed = 42;
  return workload::make_task_set(spec);
}

Time max_window(const TaskSet& ts) {
  Time w = 0;
  for (const auto& t : ts.tasks) w = std::max(w, t.arrival.window);
  return w;
}

/// One run with the exact arrival construction of bench::run_series
/// (periodic phase-jittered, per-task seed mix) at repeat index 0.
sim::SimReport run_fig09_like(sim::ShareMode mode, int cpus = 1) {
  const TaskSet ts = fig09_like_taskset();
  sim::SimConfig cfg;
  cfg.mode = mode;
  cfg.lock_access_time = usec(25);
  cfg.lockfree_access_time = nsec(500);
  cfg.sched_ns_per_op = 5.0;
  cfg.horizon = max_window(ts) * 50;
  cfg.cpu_count = cpus;
  const sched::RuaScheduler rua(mode == sim::ShareMode::kLockBased
                                    ? sched::Sharing::kLockBased
                                    : sched::Sharing::kLockFree);
  sim::Simulator s(ts, rua, cfg);
  for (const auto& t : ts.tasks) {
    Rng rng(1000 ^ (0xA5A5A5A5ULL * static_cast<std::uint64_t>(t.id + 1)));
    s.set_arrivals(t.id,
                   arrivals::periodic_phased(t.arrival, cfg.horizon, rng));
  }
  return s.run();
}

TEST(SimPin, LockFree) {
  expect_eq(fingerprint(run_fig09_like(sim::ShareMode::kLockFree)),
            Fingerprint{712, 712, 0, 1, 0, 289, 1441, 31215, 0, 722,
                        151863359, 1.0});
}

TEST(SimPin, LockBased) {
  expect_eq(fingerprint(run_fig09_like(sim::ShareMode::kLockBased)),
            Fingerprint{712, 507, 205, 0, 0, 14, 3464, 588217, 0, 722,
                        453768556, 0.78972859021463537});
}

TEST(SimPin, Ideal) {
  expect_eq(fingerprint(run_fig09_like(sim::ShareMode::kIdeal)),
            Fingerprint{712, 712, 0, 0, 0, 287, 1441, 30033, 0, 722,
                        147779606, 1.0});
}

TEST(SimPin, LockFreeTwoCpus) {
  expect_eq(fingerprint(run_fig09_like(sim::ShareMode::kLockFree, 2)),
            Fingerprint{712, 712, 0, 0, 0, 108, 1441, 16592, 0, 722,
                        75242497, 1.0});
}

TEST(SimPin, NestedDeadlockDetection) {
  workload::WorkloadSpec spec;
  spec.task_count = 6;
  spec.object_count = 4;
  spec.avg_exec = usec(300);
  spec.load = 0.8;
  spec.seed = 9;
  spec.nest_depth = 2;
  const TaskSet ts = workload::make_task_set(spec);

  sim::SimConfig cfg;
  cfg.mode = sim::ShareMode::kLockBased;
  cfg.lock_access_time = usec(20);
  cfg.sched_ns_per_op = 5.0;
  cfg.horizon = max_window(ts) * 40;
  const sched::RuaScheduler rua(sched::Sharing::kLockBased,
                                /*detect_deadlocks=*/true);
  sim::Simulator s(ts, rua, cfg);
  s.seed_arrivals(100);
  expect_eq(fingerprint(s.run()),
            Fingerprint{213, 213, 0, 0, 20, 66, 1319, 19071, 0, 217,
                        110002849, 1.0});
}

TEST(SimPin, EdfOverrunAborts) {
  workload::WorkloadSpec spec;
  spec.task_count = 8;
  spec.object_count = 4;
  spec.accesses_per_job = 2;
  spec.avg_exec = usec(400);
  spec.load = 1.02;
  spec.seed = 3;
  TaskSet ts = workload::make_task_set(spec);
  for (auto& t : ts.tasks) t.exec_variation = 0.4;

  sim::SimConfig cfg;
  cfg.mode = sim::ShareMode::kLockFree;
  cfg.lockfree_access_time = nsec(500);
  cfg.sched_ns_per_op = 5.0;
  cfg.horizon = max_window(ts) * 40;
  cfg.exec_seed = 104;
  const sched::EdfScheduler edf;
  sim::Simulator s(ts, edf, cfg);
  s.seed_arrivals(91);
  expect_eq(fingerprint(s.run()),
            Fingerprint{321, 321, 0, 1, 0, 110, 652, 1539, 0, 326,
                        184690659, 1.0});
}

}  // namespace
}  // namespace lfrt
