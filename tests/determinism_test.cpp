// Thread-count invariance of the parallel experiment harness
// (ISSUE: byte-identical results for --threads=1 and --threads=N).
//
// Runs fig09-shaped and ablation_burstiness-shaped series batches on
// pools of 1, 2, and 8 threads and requires bit-identical SeriesPoints
// (doubles compared by representation, not tolerance), plus the same
// for measure_cml's speculative-grid CML value.
#include "common.hpp"

#include <cstring>
#include <gtest/gtest.h>

namespace lfrt {
namespace {

/// Bitwise comparison: the guarantee is "same bytes", not "close".
bool bit_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

void expect_identical(const std::vector<bench::SeriesPoint>& a,
                      const std::vector<bench::SeriesPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(bit_equal(a[i].aur_mean, b[i].aur_mean)) << "point " << i;
    EXPECT_TRUE(bit_equal(a[i].aur_ci, b[i].aur_ci)) << "point " << i;
    EXPECT_TRUE(bit_equal(a[i].cmr_mean, b[i].cmr_mean)) << "point " << i;
    EXPECT_TRUE(bit_equal(a[i].cmr_ci, b[i].cmr_ci)) << "point " << i;
    EXPECT_TRUE(bit_equal(a[i].retries_per_job, b[i].retries_per_job));
    EXPECT_TRUE(bit_equal(a[i].blockings_per_job, b[i].blockings_per_job));
    EXPECT_EQ(a[i].jobs, b[i].jobs);
    EXPECT_EQ(a[i].aborted, b[i].aborted);
    EXPECT_EQ(a[i].deadlocks, b[i].deadlocks);
    EXPECT_EQ(a[i].sched_invocations, b[i].sched_invocations);
    EXPECT_EQ(a[i].sched_ops, b[i].sched_ops);
    EXPECT_EQ(a[i].sched_overhead, b[i].sched_overhead);
  }
}

/// fig09/fig10-shaped: homogeneous step-TUF task sets over a small AL
/// grid, lock-free and lock-based series interleaved.
std::vector<bench::SeriesSpec> fig_shaped_batch() {
  std::vector<bench::SeriesSpec> series;
  for (const double load : {0.5, 0.9, 1.2}) {
    workload::WorkloadSpec spec;
    spec.task_count = 8;
    spec.object_count = 6;
    spec.accesses_per_job = 2;
    spec.avg_exec = usec(100);
    spec.load = load;
    spec.seed = 42;
    const TaskSet ts = workload::make_task_set(spec);
    for (const sim::ShareMode mode :
         {sim::ShareMode::kLockFree, sim::ShareMode::kLockBased}) {
      bench::SeriesSpec s;
      s.ts = ts;
      s.rp.mode = mode;
      s.rp.repeats = 3;
      s.rp.windows_per_run = 30;
      series.push_back(std::move(s));
    }
  }
  return series;
}

/// ablation_burstiness-shaped: the UAM a_i knob varied, step TUFs,
/// lock-free only (matching the bench's shape).
std::vector<bench::SeriesSpec> burstiness_shaped_batch() {
  std::vector<bench::SeriesSpec> series;
  for (const std::int64_t a : {1, 2, 4}) {
    workload::WorkloadSpec spec;
    spec.task_count = 6;
    spec.object_count = 4;
    spec.accesses_per_job = 2;
    spec.avg_exec = usec(150);
    spec.load = 0.8;
    spec.max_per_window = a;
    spec.seed = 21;
    bench::SeriesSpec s;
    s.ts = workload::make_task_set(spec);
    s.rp.mode = sim::ShareMode::kLockFree;
    s.rp.repeats = 4;
    s.rp.windows_per_run = 30;
    series.push_back(std::move(s));
  }
  return series;
}

TEST(Determinism, FigShapedBatchThreadCountInvariant) {
  const auto series = fig_shaped_batch();
  exp::ThreadPool p1(1), p2(2), p8(8);
  const auto r1 = bench::run_series_batch(p1, series);
  const auto r2 = bench::run_series_batch(p2, series);
  const auto r8 = bench::run_series_batch(p8, series);
  expect_identical(r1, r2);
  expect_identical(r1, r8);
}

TEST(Determinism, BurstinessShapedBatchThreadCountInvariant) {
  const auto series = burstiness_shaped_batch();
  exp::ThreadPool p1(1), p2(2), p8(8);
  const auto r1 = bench::run_series_batch(p1, series);
  const auto r2 = bench::run_series_batch(p2, series);
  const auto r8 = bench::run_series_batch(p8, series);
  expect_identical(r1, r2);
  expect_identical(r1, r8);
}

TEST(Determinism, RepeatedRunsAreStable) {
  // Same pool, same batch, run twice: the harness itself must be a
  // pure function of its inputs.
  const auto series = fig_shaped_batch();
  exp::ThreadPool p4(4);
  expect_identical(bench::run_series_batch(p4, series),
                   bench::run_series_batch(p4, series));
}

TEST(Determinism, MeasureCmlThreadCountInvariant) {
  const auto make_spec = [](double al) {
    workload::WorkloadSpec spec;
    spec.task_count = 6;
    spec.object_count = 6;
    spec.accesses_per_job = 2;
    spec.avg_exec = usec(100);
    spec.load = al;
    spec.seed = 7;
    return spec;
  };
  bench::RunParams rp;
  rp.mode = sim::ShareMode::kLockFree;
  rp.repeats = 2;
  rp.windows_per_run = 25;
  exp::ThreadPool p1(1), p8(8);
  const double cml1 = bench::measure_cml(p1, make_spec, rp, 0.2, 1.2);
  const double cml8 = bench::measure_cml(p8, make_spec, rp, 0.2, 1.2);
  EXPECT_TRUE(bit_equal(cml1, cml8));
}

}  // namespace
}  // namespace lfrt
