// Chrome-tracing export of simulator execution slices.
//
// Writes SimReport::slices as a Chrome trace-event JSON array
// (chrome://tracing / Perfetto "JSON array format"): one complete
// event ("ph":"X") per slice, CPUs as track ids, tasks as thread rows.
// Gives point-and-zoom inspection of preemption patterns, blocking
// pile-ups, and multiprocessor interleavings.
#pragma once

#include <string>

#include "sim/simulator.hpp"

namespace lfrt::sim {

/// Serialize the report's slices as Chrome trace-event JSON.
/// Timestamps are microseconds (the format's native unit).
std::string to_chrome_trace(const TaskSet& tasks, const SimReport& report);

/// Convenience: serialize and write to a file; returns false on I/O
/// failure.
bool write_chrome_trace(const TaskSet& tasks, const SimReport& report,
                        const std::string& path);

}  // namespace lfrt::sim
