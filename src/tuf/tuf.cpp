#include "tuf/tuf.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace lfrt {
namespace {

/// Common base handling the critical-time clamp all shapes share.
class BasicTuf : public Tuf {
 public:
  BasicTuf(double height, Time critical) : height_(height), critical_(critical) {
    LFRT_CHECK_MSG(height > 0.0, "TUF height must be positive");
    LFRT_CHECK_MSG(critical > 0, "TUF critical time must be positive");
  }

  double utility(Time t) const final {
    if (t < 0) t = 0;
    if (t > critical_) return 0.0;
    return shape(t);
  }

  Time critical_time() const final { return critical_; }

 protected:
  /// Shape on [0, C]; callers guarantee 0 <= t <= C.
  virtual double shape(Time t) const = 0;

  double height_;
  Time critical_;
};

class StepTuf final : public BasicTuf {
 public:
  using BasicTuf::BasicTuf;
  double max_utility() const override { return height_; }
  bool non_increasing() const override { return true; }
  std::string describe() const override { return "step"; }
  std::unique_ptr<Tuf> clone() const override {
    return std::make_unique<StepTuf>(*this);
  }

 protected:
  double shape(Time) const override { return height_; }
};

class LinearTuf final : public BasicTuf {
 public:
  using BasicTuf::BasicTuf;
  double max_utility() const override { return height_; }
  bool non_increasing() const override { return true; }
  std::string describe() const override { return "linear"; }
  std::unique_ptr<Tuf> clone() const override {
    return std::make_unique<LinearTuf>(*this);
  }

 protected:
  double shape(Time t) const override {
    return height_ * (1.0 - static_cast<double>(t) / static_cast<double>(critical_));
  }
};

class ParabolicTuf final : public BasicTuf {
 public:
  using BasicTuf::BasicTuf;
  double max_utility() const override { return height_; }
  bool non_increasing() const override { return true; }
  std::string describe() const override { return "parabolic"; }
  std::unique_ptr<Tuf> clone() const override {
    return std::make_unique<ParabolicTuf>(*this);
  }

 protected:
  double shape(Time t) const override {
    const double x = static_cast<double>(t) / static_cast<double>(critical_);
    return height_ * (1.0 - x * x);
  }
};

class RampTuf final : public BasicTuf {
 public:
  using BasicTuf::BasicTuf;
  double max_utility() const override { return height_; }
  bool non_increasing() const override { return false; }
  std::string describe() const override { return "ramp"; }
  std::unique_ptr<Tuf> clone() const override {
    return std::make_unique<RampTuf>(*this);
  }

 protected:
  double shape(Time t) const override {
    return height_ * static_cast<double>(t) / static_cast<double>(critical_);
  }
};

class ExponentialTuf final : public BasicTuf {
 public:
  ExponentialTuf(double height, Time critical, double decay)
      : BasicTuf(height, critical), decay_(decay) {
    LFRT_CHECK_MSG(decay > 0.0, "decay must be positive");
  }
  double max_utility() const override { return height_; }
  bool non_increasing() const override { return true; }
  std::string describe() const override { return "exponential"; }
  std::unique_ptr<Tuf> clone() const override {
    return std::make_unique<ExponentialTuf>(*this);
  }

 protected:
  double shape(Time t) const override {
    const double x = static_cast<double>(t) / static_cast<double>(critical_);
    return height_ * std::exp(-decay_ * x);
  }

 private:
  double decay_;
};

class PiecewiseTuf final : public Tuf {
 public:
  explicit PiecewiseTuf(std::vector<std::pair<Time, double>> pts)
      : pts_(std::move(pts)) {
    LFRT_CHECK_MSG(pts_.size() >= 2, "piecewise TUF needs >= 2 breakpoints");
    LFRT_CHECK_MSG(pts_.front().first == 0, "first breakpoint must be at t=0");
    for (std::size_t i = 1; i < pts_.size(); ++i)
      LFRT_CHECK_MSG(pts_[i].first > pts_[i - 1].first,
                     "breakpoint times must be strictly increasing");
    for (const auto& [t, u] : pts_)
      LFRT_CHECK_MSG(u >= 0.0, "utilities must be non-negative");
    LFRT_CHECK_MSG(pts_.back().second == 0.0,
                   "utility must be zero at the critical time");
    // Ensure the critical time is *single*: utility must be positive
    // somewhere, and must not return to positive after first touching
    // zero at the final breakpoint (enforced by the zero-last rule and
    // the clamp in utility()).
    double peak = 0.0;
    for (const auto& [t, u] : pts_) peak = std::max(peak, u);
    LFRT_CHECK_MSG(peak > 0.0, "TUF must attain positive utility");
    max_ = peak;
  }

  double utility(Time t) const override {
    if (t < 0) t = 0;
    if (t > critical_time()) return 0.0;
    // Find the segment containing t and interpolate.
    auto it = std::upper_bound(
        pts_.begin(), pts_.end(), t,
        [](Time v, const auto& p) { return v < p.first; });
    if (it == pts_.begin()) return pts_.front().second;
    const auto& hi = *it;
    const auto& lo = *(it - 1);
    if (it == pts_.end()) return pts_.back().second;
    const double frac = static_cast<double>(t - lo.first) /
                        static_cast<double>(hi.first - lo.first);
    return lo.second + frac * (hi.second - lo.second);
  }

  Time critical_time() const override { return pts_.back().first; }
  double max_utility() const override { return max_; }

  bool non_increasing() const override {
    for (std::size_t i = 1; i < pts_.size(); ++i)
      if (pts_[i].second > pts_[i - 1].second) return false;
    return true;
  }

  std::string describe() const override { return "piecewise"; }
  std::unique_ptr<Tuf> clone() const override {
    return std::make_unique<PiecewiseTuf>(*this);
  }

 private:
  std::vector<std::pair<Time, double>> pts_;
  double max_ = 0.0;
};

}  // namespace

std::unique_ptr<Tuf> make_step_tuf(double height, Time critical) {
  return std::make_unique<StepTuf>(height, critical);
}

std::unique_ptr<Tuf> make_linear_tuf(double height, Time critical) {
  return std::make_unique<LinearTuf>(height, critical);
}

std::unique_ptr<Tuf> make_parabolic_tuf(double height, Time critical) {
  return std::make_unique<ParabolicTuf>(height, critical);
}

std::unique_ptr<Tuf> make_ramp_tuf(double height, Time critical) {
  return std::make_unique<RampTuf>(height, critical);
}

std::unique_ptr<Tuf> make_exponential_tuf(double height, Time critical,
                                          double decay) {
  return std::make_unique<ExponentialTuf>(height, critical, decay);
}

std::unique_ptr<Tuf> make_piecewise_tuf(
    std::vector<std::pair<Time, double>> breakpoints) {
  return std::make_unique<PiecewiseTuf>(std::move(breakpoints));
}

}  // namespace lfrt
