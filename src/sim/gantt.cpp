#include "sim/gantt.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "support/check.hpp"

namespace lfrt::sim {

std::string render_gantt(const TaskSet& tasks, const SimReport& report,
                         const GanttOptions& options) {
  LFRT_CHECK_MSG(options.width >= 10, "gantt needs at least 10 columns");
  Time end = options.end;
  if (end <= 0) {
    for (const auto& s : report.slices) end = std::max(end, s.end);
  }
  if (end <= options.begin) return "(no execution in window)\n";
  const Time begin = options.begin;
  const double span = static_cast<double>(end - begin);
  const int width = options.width;

  auto col_of = [&](Time t) {
    const double frac = static_cast<double>(t - begin) / span;
    return std::clamp(static_cast<int>(frac * width), 0, width - 1);
  };

  // Row key: task id, optionally refined by CPU.
  std::map<std::pair<TaskId, int>, std::string> rows;
  for (const auto& t : tasks.tasks) {
    if (!options.show_cpus)
      rows[{t.id, 0}] = std::string(static_cast<std::size_t>(width), '.');
  }
  for (const auto& s : report.slices) {
    if (s.end <= begin || s.begin >= end) continue;
    const int cpu = options.show_cpus ? s.cpu : 0;
    auto& row = rows[{s.task, cpu}];
    if (row.empty())
      row = std::string(static_cast<std::size_t>(width), '.');
    const int c0 = col_of(std::max(s.begin, begin));
    const int c1 = col_of(std::min(s.end, end));
    for (int c = c0; c <= c1; ++c)
      row[static_cast<std::size_t>(c)] = '#';
  }

  std::ostringstream os;
  os << "time " << begin << " .. " << end << " ns  ('#' running)\n";
  for (const auto& [key, row] : rows) {
    os << 'T' << key.first;
    if (options.show_cpus) os << "/cpu" << key.second;
    os << "  |" << row << "|\n";
  }
  return os.str();
}

}  // namespace lfrt::sim
