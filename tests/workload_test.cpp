// Tests for the workload generator.
#include "workload/workload.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace lfrt {
namespace {

TEST(Workload, HitsTargetLoad) {
  workload::WorkloadSpec spec;
  spec.task_count = 10;
  spec.load = 0.4;
  spec.seed = 1;
  const TaskSet ts = workload::make_task_set(spec);
  EXPECT_EQ(ts.tasks.size(), 10u);
  // Rounding C_i to integer ns perturbs the load only marginally.
  EXPECT_NEAR(ts.approximate_load(), 0.4, 0.01);
}

TEST(Workload, OverloadSpecsWork) {
  workload::WorkloadSpec spec;
  spec.load = 1.1;
  spec.seed = 2;
  const TaskSet ts = workload::make_task_set(spec);
  EXPECT_NEAR(ts.approximate_load(), 1.1, 0.02);
}

TEST(Workload, DeterministicForSeed) {
  workload::WorkloadSpec spec;
  spec.seed = 99;
  const TaskSet a = workload::make_task_set(spec);
  const TaskSet b = workload::make_task_set(spec);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].exec_time, b.tasks[i].exec_time);
    EXPECT_EQ(a.tasks[i].critical_time(), b.tasks[i].critical_time());
  }
}

TEST(Workload, DifferentSeedsDiffer) {
  workload::WorkloadSpec spec;
  spec.seed = 1;
  const TaskSet a = workload::make_task_set(spec);
  spec.seed = 2;
  const TaskSet b = workload::make_task_set(spec);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.tasks.size(); ++i)
    any_diff |= a.tasks[i].exec_time != b.tasks[i].exec_time;
  EXPECT_TRUE(any_diff);
}

TEST(Workload, HeterogeneousClassMixesShapes) {
  workload::WorkloadSpec spec;
  spec.tuf_class = workload::TufClass::kHeterogeneous;
  spec.task_count = 9;
  const TaskSet ts = workload::make_task_set(spec);
  int step = 0, linear = 0, parabolic = 0;
  for (const auto& t : ts.tasks) {
    const auto d = t.tuf->describe();
    step += d == "step";
    linear += d == "linear";
    parabolic += d == "parabolic";
  }
  EXPECT_EQ(step, 3);
  EXPECT_EQ(linear, 3);
  EXPECT_EQ(parabolic, 3);
}

TEST(Workload, StepClassIsAllSteps) {
  workload::WorkloadSpec spec;
  spec.tuf_class = workload::TufClass::kStep;
  const TaskSet ts = workload::make_task_set(spec);
  for (const auto& t : ts.tasks) EXPECT_EQ(t.tuf->describe(), "step");
}

TEST(Workload, AccessesSortedAndWithinUniverse) {
  workload::WorkloadSpec spec;
  spec.accesses_per_job = 5;
  spec.object_count = 3;
  spec.seed = 7;
  const TaskSet ts = workload::make_task_set(spec);
  for (const auto& t : ts.tasks) {
    ASSERT_EQ(t.accesses.size(), 5u);
    Time prev = 0;
    for (const auto& a : t.accesses) {
      EXPECT_GE(a.offset, prev);
      prev = a.offset;
      EXPECT_GE(a.object, 0);
      EXPECT_LT(a.object, 3);
    }
  }
}

TEST(Workload, UamWindowEqualsCriticalTime) {
  const TaskSet ts = workload::make_task_set({});
  for (const auto& t : ts.tasks)
    EXPECT_EQ(t.arrival.window, t.critical_time());
}

TEST(Workload, CriticalFractionStretchesWindow) {
  workload::WorkloadSpec spec;
  spec.critical_fraction = 0.5;
  spec.seed = 3;
  const TaskSet ts = workload::make_task_set(spec);
  for (const auto& t : ts.tasks) {
    EXPECT_EQ(t.arrival.window, 2 * t.critical_time());
    EXPECT_LE(t.critical_time(), t.arrival.window);
  }
  // AL is defined over critical times and must be unaffected.
  EXPECT_NEAR(ts.approximate_load(), spec.load, 0.01);
}

TEST(Workload, NestedSpansGenerated) {
  workload::WorkloadSpec spec;
  spec.nest_depth = 3;
  spec.object_count = 4;
  spec.seed = 5;
  const TaskSet ts = workload::make_task_set(spec);
  for (const auto& t : ts.tasks) {
    ASSERT_EQ(t.spans.size(), 3u);
    EXPECT_TRUE(t.accesses.empty());
    EXPECT_EQ(t.access_count(), 3);
    // Distinct objects within a nest.
    EXPECT_NE(t.spans[0].object, t.spans[1].object);
    EXPECT_NE(t.spans[1].object, t.spans[2].object);
    EXPECT_NE(t.spans[0].object, t.spans[2].object);
  }
}

TEST(Workload, NestDepthBeyondObjectsRejected) {
  workload::WorkloadSpec spec;
  spec.nest_depth = 5;
  spec.object_count = 4;
  EXPECT_THROW(workload::make_task_set(spec), InvariantViolation);
}

TEST(Workload, InvalidCriticalFractionRejected) {
  workload::WorkloadSpec spec;
  spec.critical_fraction = 0.0;
  EXPECT_THROW(workload::make_task_set(spec), InvariantViolation);
  spec.critical_fraction = 1.5;
  EXPECT_THROW(workload::make_task_set(spec), InvariantViolation);
}

TEST(Workload, RejectsInvalidSpecs) {
  workload::WorkloadSpec spec;
  spec.load = 0.0;
  EXPECT_THROW(workload::make_task_set(spec), InvariantViolation);
  spec = {};
  spec.load = 20.0;  // per-task share above 1 for 10 tasks
  EXPECT_THROW(workload::make_task_set(spec), InvariantViolation);
  spec = {};
  spec.task_count = 0;
  EXPECT_THROW(workload::make_task_set(spec), InvariantViolation);
  spec = {};
  spec.exec_jitter = 1.0;
  EXPECT_THROW(workload::make_task_set(spec), InvariantViolation);
}

TEST(Workload, MaxPerWindowPropagates) {
  workload::WorkloadSpec spec;
  spec.max_per_window = 3;
  const TaskSet ts = workload::make_task_set(spec);
  for (const auto& t : ts.tasks) {
    EXPECT_EQ(t.arrival.max_per_window, 3);
    EXPECT_EQ(t.arrival.min_per_window, 1);
  }
}

}  // namespace
}  // namespace lfrt
