// RunReport — the job-lifecycle accounting both execution substrates
// share.
//
// The paper validates its analysis on a simulated uniprocessor AND a
// real POSIX middleware testbed; this repo mirrors that with
// sim::Simulator and rt::Executor.  Both now report through this
// structure (sim::SimReport and rt::ExecutorReport derive from it and
// add only substrate-specific extras), so AUR/CMR, per-job terminal
// records, and per-task sojourn/retry breakdowns are defined exactly
// once and every figure has a real-threads witness with the same
// shape.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/contention.hpp"
#include "task/task.hpp"

namespace lfrt::runtime {

/// Aggregate + per-job outcome of one run on either substrate.
struct RunReport {
  // Jobs that reached a terminal state and are counted toward the
  // metrics.  Simulator: jobs whose critical time falls within the
  // horizon.  Executor: every submitted job (drain waits for all).
  std::int64_t counted_jobs = 0;
  std::int64_t completed = 0;  ///< completed at or before critical time
  std::int64_t aborted = 0;    ///< critical time expired first

  double accrued_utility = 0.0;
  double max_possible_utility = 0.0;  ///< sum of U_i(0) over counted jobs
                                      ///< (the abort model: an aborted
                                      ///< job accrues zero)

  /// Accrued utility ratio (paper, Section 5): accrued / max possible.
  double aur() const {
    return max_possible_utility > 0 ? accrued_utility / max_possible_utility
                                    : 0.0;
  }
  /// Critical-time-meet ratio (Section 6.2).
  double cmr() const {
    return counted_jobs > 0
               ? static_cast<double>(completed) /
                     static_cast<double>(counted_jobs)
               : 0.0;
  }

  // --- scheduling activity ---
  std::int64_t dispatches = 0;  ///< times a job (re)gained a CPU
  std::int64_t sched_invocations = 0;
  std::int64_t sched_ops = 0;  ///< counted elementary scheduler operations

  // --- sharing-mechanism events (validated against the paper's bounds) ---
  std::int64_t total_retries = 0;    ///< lock-free access restarts (f_i)
  std::int64_t total_blockings = 0;  ///< lock-based blocking episodes
  std::int64_t total_preemptions = 0;
  std::int64_t total_backoff_spins = 0;  ///< sum of Job::backoff_spins

  // --- service-mode admission + ingest accounting (PR 7) ---
  // Jobs arriving through ingest lanes pass an admission filter before
  // they become submissions.  A rejected job never runs: it accrues
  // zero utility but its U(0) still counts toward max_possible_utility
  // (shedding load is an abort-at-admission, not a free pass), and it
  // counts in counted_jobs: counted_jobs == submitted + rejected on the
  // executor.  A degraded job runs under a renegotiated (cheaper) TUF
  // and is a normal submission otherwise.  All zero outside service
  // mode.
  std::int64_t rejected = 0;
  std::int64_t degraded = 0;

  /// Sojourn (arrival -> completion) percentiles over completed jobs,
  /// ns, resolved to log2-bucket upper bounds (LatencyHistogram).
  /// Zero when the substrate doesn't record them (the simulator) or
  /// nothing completed.
  std::int64_t sojourn_p50_ns = 0;
  std::int64_t sojourn_p99_ns = 0;
  std::int64_t sojourn_p999_ns = 0;

  /// Ingest-lane wait (offer -> admission decision) percentiles, ns.
  /// Zero when no lanes were used.
  std::int64_t ingest_p50_ns = 0;
  std::int64_t ingest_p99_ns = 0;
  std::int64_t ingest_p999_ns = 0;

  // --- per-CPU-slot breakdowns (placement quality is invisible
  //     without them) ---

  /// Busy time per CPU slot: executor — wall-clock ns a worker held the
  /// slot; simulator — simulated time a job occupied the CPU.  Empty
  /// when the substrate predates the field (legacy JSON) — both
  /// substrates fill it, sized cpu_count.
  std::vector<Time> cpu_busy;

  /// Times a job was newly dispatched onto each CPU slot (a sticky job
  /// staying put does not recount).  Sums to `dispatches` on both
  /// substrates.
  std::vector<std::int64_t> cpu_jobs;

  /// Per-job terminal records (arrival, sojourn, retries, ...).
  std::vector<Job> jobs;

  /// Object × task heatmap of where retries/blockings landed.  Empty
  /// when the run's substrate didn't attribute per-object events (e.g.
  /// free-standing Executor use without the runtime adapter).
  ContentionMatrix contention;

  // --- per-task breakdowns (defined once for both substrates) ---

  /// Aggregate view of one task's jobs within this run.
  struct TaskBreakdown {
    std::int64_t jobs = 0;
    std::int64_t completed = 0;
    std::int64_t aborted = 0;
    std::int64_t retries = 0;
    std::int64_t max_retries = 0;  ///< worst single job (Theorem 2's f_i)
    std::int64_t blockings = 0;
    double mean_sojourn = 0.0;  ///< ns, over completed jobs
  };

  TaskBreakdown breakdown_of(TaskId id) const {
    TaskBreakdown b;
    double sojourn_sum = 0.0;
    for (const Job& j : jobs) {
      if (j.task != id) continue;
      ++b.jobs;
      b.retries += j.retries;
      b.blockings += j.blockings;
      if (j.retries > b.max_retries) b.max_retries = j.retries;
      if (j.state == JobState::kCompleted) {
        ++b.completed;
        sojourn_sum += static_cast<double>(j.sojourn());
      } else if (j.state == JobState::kAborted) {
        ++b.aborted;
      }
    }
    if (b.completed > 0)
      b.mean_sojourn = sojourn_sum / static_cast<double>(b.completed);
    return b;
  }

  /// Maximum retries by any single job of the given task — compared
  /// against analysis::retry_bound in tests and benches.
  std::int64_t max_retries_of_task(TaskId id) const {
    std::int64_t best = 0;
    for (const Job& j : jobs)
      if (j.task == id && j.retries > best) best = j.retries;
    return best;
  }

  /// Mean sojourn time of completed jobs of the given task (ns).
  double mean_sojourn_of_task(TaskId id) const {
    double sum = 0.0;
    std::int64_t n = 0;
    for (const Job& j : jobs) {
      if (j.task == id && j.state == JobState::kCompleted) {
        sum += static_cast<double>(j.sojourn());
        ++n;
      }
    }
    return n > 0 ? sum / static_cast<double>(n) : 0.0;
  }
};

}  // namespace lfrt::runtime
