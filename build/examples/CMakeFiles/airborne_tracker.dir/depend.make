# Empty dependencies file for airborne_tracker.
# This may be replaced when dependencies are built.
