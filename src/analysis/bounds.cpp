#include "analysis/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/check.hpp"
#include "support/saturate.hpp"

namespace lfrt::analysis {

namespace {

using support::sat_add;
using support::sat_ceil_div;
using support::sat_mul;

const TaskParams& task(const TaskSet& ts, TaskId i) { return ts.by_id(i); }

}  // namespace

std::int64_t interference_arrivals(const TaskSet& ts, TaskId i) {
  // Saturating throughout: a near-INT64_MAX critical time against a
  // 1-tick window must clamp, not wrap into a negative "bound".
  const Time ci = task(ts, i).critical_time();
  std::int64_t x = 0;
  for (const auto& tj : ts.tasks) {
    if (tj.id == i) continue;
    x = sat_add(x, sat_mul(tj.arrival.max_per_window,
                           sat_add(sat_ceil_div(ci, tj.arrival.window), 1)));
  }
  return x;
}

std::int64_t retry_bound(const TaskSet& ts, TaskId i) {
  // f_i <= 3 a_i + sum_{j != i} 2 a_j (ceil(C_i / W_j) + 1).
  //
  // Case 2 of the proof: the job's own task contributes at most 3 a_i
  // events (a_i arrivals + a_i completions inside [t0, t0+C_i], plus
  // completions of up to a_i jobs released during [t0-C_i, t0]).
  // Case 1: every other task T_j contributes at most
  // a_j (ceil(C_i/W_j)+1) releases, each worth two events
  // (arrival + completion-or-abort).
  const auto& ti = task(ts, i);
  return sat_add(sat_mul(3, ti.arrival.max_per_window),
                 sat_mul(2, interference_arrivals(ts, i)));
}

std::int64_t max_scheduling_events(const TaskSet& ts, TaskId i) {
  return retry_bound(ts, i);
}

std::int64_t max_blocking_jobs(const TaskSet& ts, TaskId i) {
  // n_i <= 2 a_i + x_i (proof of Theorem 3): the job's own task can have
  // at most 2 a_i peer jobs alive in the window, other tasks x_i.
  const auto& ti = task(ts, i);
  return sat_add(sat_mul(2, ti.arrival.max_per_window),
                 interference_arrivals(ts, i));
}

Time worst_blocking_time(const TaskSet& ts, TaskId i, Time r) {
  const auto& ti = task(ts, i);
  return sat_mul(r, std::min<std::int64_t>(ti.access_count(),
                                           max_blocking_jobs(ts, i)));
}

Time worst_retry_time(const TaskSet& ts, TaskId i, Time s) {
  return sat_mul(s, retry_bound(ts, i));
}

Time worst_interference(const TaskSet& ts, TaskId i, Time t_acc) {
  const Time ci = task(ts, i).critical_time();
  Time interference = 0;
  for (const auto& tj : ts.tasks) {
    if (tj.id == i) continue;
    const Time cj = sat_add(tj.exec_time, sat_mul(tj.access_count(), t_acc));
    interference = sat_add(
        interference,
        sat_mul(sat_mul(tj.arrival.max_per_window,
                        sat_add(sat_ceil_div(ci, tj.arrival.window), 1)),
                cj));
  }
  return interference;
}

Time worst_sojourn_lockbased(const TaskSet& ts, TaskId i, Time r) {
  const auto& ti = task(ts, i);
  return sat_add(sat_add(ti.exec_time, worst_interference(ts, i, r)),
                 sat_add(sat_mul(r, ti.access_count()),
                         worst_blocking_time(ts, i, r)));
}

Time worst_sojourn_lockfree(const TaskSet& ts, TaskId i, Time s) {
  const auto& ti = task(ts, i);
  return sat_add(sat_add(ti.exec_time, worst_interference(ts, i, s)),
                 sat_add(sat_mul(s, ti.access_count()),
                         worst_retry_time(ts, i, s)));
}

double lockfree_ratio_threshold(const TaskSet& ts, TaskId i) {
  const auto& ti = task(ts, i);
  const std::int64_t m = ti.access_count();
  const std::int64_t n = max_blocking_jobs(ts, i);
  if (m <= n) return 2.0 / 3.0;
  const std::int64_t a = ti.arrival.max_per_window;
  const std::int64_t x = interference_arrivals(ts, i);
  return static_cast<double>(m + n) / static_cast<double>(m + 3 * a + 2 * x);
}

double lockfree_exact_threshold(const TaskSet& ts, TaskId i) {
  const auto& ti = task(ts, i);
  const std::int64_t m = ti.access_count();
  const std::int64_t n = max_blocking_jobs(ts, i);
  const std::int64_t f = retry_bound(ts, i);
  return static_cast<double>(m + std::min(m, n)) /
         static_cast<double>(m + f);
}

bool lockfree_wins(const TaskSet& ts, TaskId i, Time s, Time r) {
  LFRT_CHECK_MSG(r > 0 && s > 0, "access times must be positive");
  return static_cast<double>(s) / static_cast<double>(r) <
         lockfree_ratio_threshold(ts, i);
}

Time effective_access_cost(const TaskSet& ts, TaskId i,
                           runtime::ObjectKind kind,
                           runtime::ObjectImpl impl,
                           const runtime::CostModel& model) {
  const auto& ti = task(ts, i);
  const std::int64_t contenders = std::min<std::int64_t>(
      ti.access_count(), max_blocking_jobs(ts, i));
  // Snapshot reads carry the scan term; folding it in unconditionally
  // keeps t_eff the worst case over the job's access directions.
  return runtime::access_cost(model.at(kind, impl), kind,
                              /*write=*/kind != runtime::ObjectKind::kSnapshot,
                              contenders);
}

Time worst_sojourn_cost(const TaskSet& ts, TaskId i,
                        runtime::ObjectKind kind, runtime::ObjectImpl impl,
                        const runtime::CostModel& model) {
  const Time t_eff = effective_access_cost(ts, i, kind, impl, model);
  return runtime::is_lock_based(impl)
             ? worst_sojourn_lockbased(ts, i, t_eff)
             : worst_sojourn_lockfree(ts, i, t_eff);
}

bool lockfree_wins_cost(const TaskSet& ts, TaskId i,
                        runtime::ObjectKind kind,
                        runtime::ObjectImpl lock_impl,
                        const runtime::CostModel& model) {
  LFRT_CHECK_MSG(runtime::is_lock_based(lock_impl),
                 "lockfree_wins_cost compares against a lock impl");
  const Time s_eff = effective_access_cost(
      ts, i, kind, runtime::ObjectImpl::kLockFree, model);
  const Time r_eff = effective_access_cost(ts, i, kind, lock_impl, model);
  return lockfree_wins(ts, i, s_eff, r_eff);
}

namespace {

/// Shared body of Lemmas 4 and 5: the band is
///   sum (k_i/W_i) U_i(slow_i) / sum (k_i/W_i) U_i(0)
/// with k = l, slow = worst sojourn for the lower bound and
/// k = a, slow = best sojourn (u_i + t_acc * m_i) for the upper bound.
AurBounds aur_band(const TaskSet& ts, Time t_acc,
                   Time (*worst_extra)(const TaskSet&, TaskId, Time)) {
  double lo_num = 0.0, lo_den = 0.0, hi_num = 0.0, hi_den = 0.0;
  for (const auto& t : ts.tasks) {
    LFRT_CHECK_MSG(t.tuf->non_increasing(),
                   "Lemmas 4/5 require non-increasing TUFs");
    const double w = static_cast<double>(t.arrival.window);
    const double u0 = t.tuf->utility(0);
    const Time best = t.exec_time + t_acc * t.access_count();
    const Time worst = best + worst_interference(ts, t.id, t_acc) +
                       worst_extra(ts, t.id, t_acc);
    const double l = static_cast<double>(t.arrival.min_per_window);
    const double a = static_cast<double>(t.arrival.max_per_window);
    lo_num += l / w * t.tuf->utility(worst);
    lo_den += l / w * u0;
    hi_num += a / w * t.tuf->utility(best);
    hi_den += a / w * u0;
  }
  AurBounds b;
  b.lower = lo_den > 0.0 ? lo_num / lo_den : 0.0;
  b.upper = hi_den > 0.0 ? hi_num / hi_den : 1.0;
  return b;
}

}  // namespace

AurBounds lockfree_aur_bounds(const TaskSet& ts, Time s) {
  return aur_band(ts, s, &worst_retry_time);
}

AurBounds lockbased_aur_bounds(const TaskSet& ts, Time r) {
  return aur_band(ts, r, &worst_blocking_time);
}

Time uam_demand(const TaskSet& ts, TaskId i, Time delta, Time t_acc) {
  const auto& ti = ts.by_id(i);
  const Time ci = ti.critical_time();
  if (delta < ci) return 0;
  const Time c = ti.exec_time + ti.access_count() * t_acc;
  // Arrivals whose critical time also lands inside the interval fall in
  // a sub-interval of length delta - C_i; with burst clusters spaced
  // exactly W_i apart, at most a_i * (floor((delta - C_i)/W_i) + 1) fit
  // (the sliding-window cap forbids two clusters closer than W_i —
  // tighter than the straddle count used for *releases* in Theorem 2).
  return ti.arrival.max_per_window *
         ((delta - ci) / ti.arrival.window + 1) * c;
}

bool uam_edf_feasible(const TaskSet& ts, Time t_acc, Time* worst_slack) {
  double util = 0.0;
  Time burst = 0;   // sum of a_i * c_i
  Time max_c = 0;
  for (const auto& t : ts.tasks) {
    const Time c = t.exec_time + t.access_count() * t_acc;
    util += static_cast<double>(t.arrival.max_per_window * c) /
            static_cast<double>(t.arrival.window);
    burst += t.arrival.max_per_window * c;
    max_c = std::max(max_c, t.critical_time());
  }
  if (worst_slack) *worst_slack = kTimeNever;
  if (util > 1.0 + 1e-12) return false;

  Time limit;
  if (util < 1.0 - 1e-9) {
    // demand(delta) <= util*(delta - C) + burst, so demand can exceed
    // delta only below burst / (1 - util); keep a 2x margin.
    limit = static_cast<Time>(
        std::ceil(2.0 * static_cast<double>(burst) / (1.0 - util)));
  } else {
    // Exactly full utilization: the slack function is periodic with the
    // windows' lcm beyond max C — check one full period, or give up
    // (conservatively infeasible) if the lcm is astronomic.
    constexpr Time kLcmCap = sec(3600);
    Time lcm = 1;
    for (const auto& t : ts.tasks) {
      const Time w = t.arrival.window;
      const Time g = std::gcd(lcm, w);
      if (lcm / g > kLcmCap / w) return false;  // cap would overflow
      lcm = lcm / g * w;
    }
    limit = max_c + lcm;
  }

  // The demand-bound function changes only at delta = C_i + k * W_i.
  // Each task's own C_i is always checked (even beyond `limit`) so the
  // reported slack is meaningful for lightly loaded sets.
  std::vector<Time> points;
  for (const auto& t : ts.tasks) {
    points.push_back(t.critical_time());
    for (Time d = t.critical_time() + t.arrival.window; d <= limit;
         d += t.arrival.window)
      points.push_back(d);
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  bool ok = true;
  for (Time d : points) {
    Time demand = 0;
    for (const auto& t : ts.tasks) demand += uam_demand(ts, t.id, d, t_acc);
    const Time slack = d - demand;
    if (worst_slack) *worst_slack = std::min(*worst_slack, slack);
    if (slack < 0) ok = false;
  }
  return ok;
}

double rua_lockbased_asymptotic(std::int64_t n) {
  if (n < 2) return 1.0;
  const double d = static_cast<double>(n);
  return d * d * std::log2(d);
}

double rua_lockfree_asymptotic(std::int64_t n) {
  if (n < 1) return 1.0;
  const double d = static_cast<double>(n);
  return d * d;
}

}  // namespace lfrt::analysis
