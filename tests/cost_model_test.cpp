// runtime::CostModel and its calibration cache.
//
// Three contracts:
//
//   * arithmetic — access_cost folds base / per-contender / retry /
//     snapshot-scan terms exactly as documented, and never returns a
//     zero-length access,
//   * flat identity — a CostModel::flat(s, r) table fed to the
//     simulator reproduces the disabled-model (pre-zoo flat-scalar)
//     runs bit-exactly, pinned by comparing serialized reports; this is
//     the compatibility bridge that keeps pre-refactor default-config
//     sims unchanged,
//   * cache schema — the persistent calibration cache is gated on
//     kCalibrationCacheSchema: a malformed file, a pre-zoo flat-format
//     file (no "schema" key), or a current-schema entry without the
//     full cell table all read as a miss, so calibrate() silently
//     re-measures and overwrites in the current format.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "runtime/calibrate.hpp"
#include "runtime/cost_model.hpp"
#include "runtime/report_json.hpp"
#include "sched/rua.hpp"
#include "sim/simulator.hpp"
#include "workload/workload.hpp"

namespace lfrt {
namespace {

using runtime::AccessCost;
using runtime::CostModel;
using runtime::ObjectImpl;
using runtime::ObjectKind;

TEST(AccessCostArithmetic, FoldsEveryTerm) {
  AccessCost c;
  c.base = 100;
  c.per_contender = 7;
  c.per_segment = 11;
  c.retry_penalty = 30;

  // Queue write: base + slope * contenders + retry term, no scan term.
  EXPECT_EQ(runtime::access_cost(c, ObjectKind::kQueue, true, 0), 100);
  EXPECT_EQ(runtime::access_cost(c, ObjectKind::kQueue, true, 3), 121);
  EXPECT_EQ(runtime::access_cost(c, ObjectKind::kQueue, true, 3, 2), 181);
  // Only snapshot *reads* collect segments.
  EXPECT_EQ(runtime::access_cost(c, ObjectKind::kSnapshot, true, 0), 100);
  EXPECT_EQ(
      runtime::access_cost(c, ObjectKind::kSnapshot, false, 0),
      100 + 11 * static_cast<Time>(runtime::kSnapshotSegments));
  EXPECT_EQ(runtime::access_cost(c, ObjectKind::kQueue, false, 0), 100);
}

TEST(AccessCostArithmetic, NeverShorterThanOneTick) {
  EXPECT_EQ(runtime::access_cost(AccessCost{}, ObjectKind::kQueue, true, 0),
            1);
  EXPECT_EQ(
      runtime::access_cost(AccessCost{}, ObjectKind::kSnapshot, false, 5),
      1);
}

TEST(AccessCostArithmetic, MonotoneInContenders) {
  AccessCost c;
  c.base = 50;
  c.per_contender = 5;
  Time prev = 0;
  for (std::int64_t n = 0; n <= 8; ++n) {
    const Time t = runtime::access_cost(c, ObjectKind::kQueue, true, n);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(CostModelTable, FlatFillsEveryCell) {
  const CostModel m = CostModel::flat(7, 13);
  EXPECT_TRUE(m.enabled);
  for (const ObjectKind kind : runtime::all_object_kinds()) {
    for (const ObjectImpl impl : runtime::all_object_impls()) {
      const AccessCost& c = m.at(kind, impl);
      EXPECT_EQ(c.base, impl == ObjectImpl::kLockFree ? 7 : 13);
      EXPECT_EQ(c.per_contender, 0);
      EXPECT_EQ(c.per_segment, 0);
      EXPECT_EQ(c.retry_penalty, 0);
    }
  }
  EXPECT_FALSE(CostModel{}.enabled);
}

// ---- flat identity against the simulator ---------------------------

sim::SimReport run_once(sim::ShareMode mode, bool with_flat_model) {
  workload::WorkloadSpec spec;
  spec.task_count = 5;
  spec.object_count = 2;
  spec.accesses_per_job = 3;
  spec.avg_exec = usec(300);
  spec.load = 0.9;
  spec.read_fraction = 0.5;
  spec.tuf_class = workload::TufClass::kStep;
  spec.seed = 33;
  const TaskSet ts = workload::make_task_set(spec);

  sim::SimConfig cfg;
  cfg.mode = mode;
  Time max_window = 0;
  for (const auto& t : ts.tasks)
    max_window = std::max(max_window, t.arrival.window);
  cfg.horizon = max_window * 20;
  if (with_flat_model)
    cfg.cost_model =
        CostModel::flat(cfg.lockfree_access_time, cfg.lock_access_time);

  static const sched::RuaScheduler lb(sched::Sharing::kLockBased);
  static const sched::RuaScheduler lf(sched::Sharing::kLockFree);
  sim::Simulator sim(ts,
                     mode == sim::ShareMode::kLockBased
                         ? static_cast<const sched::Scheduler&>(lb)
                         : static_cast<const sched::Scheduler&>(lf),
                     cfg);
  sim.seed_arrivals(42);
  return sim.run();
}

/// CostModel::flat(s, r) must be indistinguishable from the disabled
/// model: same jobs, same retries/blockings, same completions — pinned
/// by comparing the serialized reports byte for byte.
TEST(CostModelFlatIdentity, LockFreeRunsBitIdentical) {
  const sim::SimReport off = run_once(sim::ShareMode::kLockFree, false);
  const sim::SimReport on = run_once(sim::ShareMode::kLockFree, true);
  EXPECT_GT(off.counted_jobs, 0);
  EXPECT_EQ(runtime::to_json(off), runtime::to_json(on));
}

TEST(CostModelFlatIdentity, LockBasedRunsBitIdentical) {
  const sim::SimReport off = run_once(sim::ShareMode::kLockBased, false);
  const sim::SimReport on = run_once(sim::ShareMode::kLockBased, true);
  EXPECT_GT(off.counted_jobs, 0);
  EXPECT_EQ(runtime::to_json(off), runtime::to_json(on));
}

// ---- calibration cache schema --------------------------------------

constexpr const char* kCachePath = "cost_model_test_cache.json";
constexpr std::int64_t kSamples = 64;

void write_file(const std::string& content) {
  std::ofstream f(kCachePath, std::ios::trunc);
  f << content;
}

std::string read_file() {
  std::ifstream in(kCachePath);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

runtime::AccessCalibration calibrate_here(runtime::ExecConfig& cfg) {
  workload::WorkloadSpec spec;
  spec.task_count = 2;
  spec.object_count = 2;
  const TaskSet ts = workload::make_task_set(spec);
  runtime::CalibrateOptions opts;
  opts.cache_path = kCachePath;
  return runtime::calibrate(cfg, ts, kSamples, opts);
}

TEST(CalibrationCache, MalformedFileRecalibratesAndRewrites) {
  write_file("this is not json {{{");
  runtime::ExecConfig cfg;
  const runtime::AccessCalibration cal = calibrate_here(cfg);
  EXPECT_FALSE(cal.from_cache);
  EXPECT_TRUE(cal.model.enabled);
  EXPECT_TRUE(cfg.sim_cost_model.enabled);
  EXPECT_GE(cal.lockfree_access_time, 1);
  EXPECT_GE(cal.lock_access_time, 1);

  const std::string rewritten = read_file();
  EXPECT_NE(rewritten.find("\"schema\":2"), std::string::npos);
  EXPECT_NE(rewritten.find("\"cells\":"), std::string::npos);
  std::remove(kCachePath);
}

TEST(CalibrationCache, PreZooFlatSchemaReadsAsMiss) {
  // The pre-zoo format: no "schema" key, flat scalars only.  Must be
  // treated exactly like a missing cache, then overwritten in v2.
  write_file(R"({"entries":[{"host":"anyhost","cpus":1,"samples":64,)"
             R"("lockfree_ns":123,"lock_ns":456}]})");
  runtime::ExecConfig cfg;
  const runtime::AccessCalibration cal = calibrate_here(cfg);
  EXPECT_FALSE(cal.from_cache);
  EXPECT_TRUE(cal.model.enabled);

  // The rewrite is schema-current, so the very next calibrate hits.
  runtime::ExecConfig cfg2;
  const runtime::AccessCalibration cal2 = calibrate_here(cfg2);
  EXPECT_TRUE(cal2.from_cache);
  EXPECT_TRUE(cal2.model.enabled);
  EXPECT_EQ(cal2.model, cal.model);
  EXPECT_EQ(cal2.lockfree_access_time, cal.lockfree_access_time);
  EXPECT_EQ(cal2.lock_access_time, cal.lock_access_time);
  EXPECT_EQ(cfg2.sim_cost_model, cal.model);
  std::remove(kCachePath);
}

TEST(CalibrationCache, SchemaCurrentEntryWithoutCellsIsAMiss) {
  // Seed a valid v2 cache, then strip the cell table: a hit requires
  // the *full* per-(kind, impl) model, not just the flat scalars.
  runtime::ExecConfig cfg;
  const runtime::AccessCalibration seeded = calibrate_here(cfg);
  ASSERT_FALSE(seeded.from_cache);

  std::string content = read_file();
  const std::size_t cells = content.find(",\"cells\":[");
  ASSERT_NE(cells, std::string::npos);
  const std::size_t end = content.find(']', cells);
  ASSERT_NE(end, std::string::npos);
  content.erase(cells, end - cells + 1);
  write_file(content);

  runtime::ExecConfig cfg2;
  const runtime::AccessCalibration cal = calibrate_here(cfg2);
  EXPECT_FALSE(cal.from_cache);
  EXPECT_TRUE(cal.model.enabled);
  std::remove(kCachePath);
}

TEST(CalibrationCache, NoCacheLocationCalibratesUncachedWithoutFiles) {
  // With both $LFRT_CALIBRATION_CACHE and $HOME unset there is nowhere
  // sensible to persist measurements.  calibrate() must degrade to an
  // uncached measurement — no throw, no ./.lfrt_calibration.json
  // dropped into the working directory (the old fallback).
  const char* old_cache = std::getenv("LFRT_CALIBRATION_CACHE");
  const char* old_home = std::getenv("HOME");
  const std::string saved_cache = old_cache ? old_cache : "";
  const std::string saved_home = old_home ? old_home : "";
  unsetenv("LFRT_CALIBRATION_CACHE");
  unsetenv("HOME");
  std::remove(".lfrt_calibration.json");

  EXPECT_TRUE(runtime::calibration_cache_path().empty());
  workload::WorkloadSpec spec;
  spec.task_count = 2;
  spec.object_count = 2;
  const TaskSet ts = workload::make_task_set(spec);
  runtime::ExecConfig cfg;
  runtime::AccessCalibration cal;
  EXPECT_NO_THROW(cal = runtime::calibrate(cfg, ts, kSamples));
  EXPECT_FALSE(cal.from_cache);
  EXPECT_TRUE(cal.model.enabled);
  EXPECT_GE(cal.lockfree_access_time, 1);

  // Still uncached on the second call (nothing was persisted), and the
  // cwd stays clean.
  runtime::ExecConfig cfg2;
  const runtime::AccessCalibration cal2 = runtime::calibrate(cfg2, ts,
                                                             kSamples);
  EXPECT_FALSE(cal2.from_cache);
  EXPECT_FALSE(std::ifstream(".lfrt_calibration.json").good());

  if (old_cache) setenv("LFRT_CALIBRATION_CACHE", saved_cache.c_str(), 1);
  if (old_home) setenv("HOME", saved_home.c_str(), 1);
}

TEST(CalibrationCache, UnwritableCachePathStillCalibrates) {
  // A cache directory that cannot be created/written must not fail the
  // calibration — measure, warn once, move on.
  runtime::CalibrateOptions opts;
  opts.cache_path = "/proc/definitely/not/writable/cache.json";
  workload::WorkloadSpec spec;
  spec.task_count = 2;
  spec.object_count = 2;
  const TaskSet ts = workload::make_task_set(spec);
  runtime::ExecConfig cfg;
  runtime::AccessCalibration cal;
  EXPECT_NO_THROW(cal = runtime::calibrate(cfg, ts, kSamples, opts));
  EXPECT_FALSE(cal.from_cache);
  EXPECT_TRUE(cal.model.enabled);
  EXPECT_GE(cal.lock_access_time, 1);
}

TEST(CalibrationCache, SecondCalibrationHits) {
  std::remove(kCachePath);
  runtime::ExecConfig cfg;
  const runtime::AccessCalibration measured = calibrate_here(cfg);
  EXPECT_FALSE(measured.from_cache);

  runtime::ExecConfig cfg2;
  const runtime::AccessCalibration cached = calibrate_here(cfg2);
  EXPECT_TRUE(cached.from_cache);
  EXPECT_EQ(cached.model, measured.model);
  for (const ObjectKind kind : runtime::all_object_kinds())
    for (const ObjectImpl impl : runtime::all_object_impls())
      EXPECT_GE(cached.model.at(kind, impl).base, 1);
  std::remove(kCachePath);
}

}  // namespace
}  // namespace lfrt
