// Tests for the lock-free substrate: tagged refs, node pool, Michael &
// Scott queue, Treiber stack, SPSC ring — sequential semantics plus
// concurrent stress with FIFO/LIFO and conservation checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "lockfree/annotate.hpp"
#include "lockfree/msqueue.hpp"
#include "lockfree/node_pool.hpp"
#include "lockfree/spsc_ring.hpp"
#include "lockfree/tagged.hpp"
#include "lockfree/treiber_stack.hpp"

namespace lfrt::lockfree {
namespace {

// TSan serializes the tight CAS loops; at full iteration counts the
// 4-thread hammer over a 4-node pool can take minutes on a small box.
// Scale down under TSan — recycling pressure per cycle is unchanged.
#ifdef LFRT_TSAN_ACTIVE
constexpr int kHammerCycles = 2000;
#else
constexpr int kHammerCycles = 30000;
#endif

TEST(TaggedRef, PackingRoundTrips) {
  const auto r = TaggedRef::make(0x12345678u, 0x9ABCDEF0u);
  EXPECT_EQ(r.index(), 0x12345678u);
  EXPECT_EQ(r.tag(), 0x9ABCDEF0u);
  EXPECT_FALSE(r.is_null());
}

TEST(TaggedRef, NullAndBump) {
  const auto n = TaggedRef::null(5);
  EXPECT_TRUE(n.is_null());
  EXPECT_EQ(n.tag(), 5u);
  const auto b = n.bump(3);
  EXPECT_EQ(b.index(), 3u);
  EXPECT_EQ(b.tag(), 6u);
}

TEST(TaggedRef, TagWrapsWithoutUb) {
  const auto r = TaggedRef::make(1, 0xFFFFFFFFu);
  EXPECT_EQ(r.bump(1).tag(), 0u);
}

struct PoolNode {
  int value = 0;
  std::atomic<std::uint64_t> next{0};
};

TEST(NodePool, AllocateAllThenExhaust) {
  NodePool<PoolNode> pool(4);
  std::vector<std::uint32_t> got;
  for (int i = 0; i < 4; ++i) {
    const auto idx = pool.allocate();
    ASSERT_NE(idx, TaggedRef::kNullIndex);
    got.push_back(idx);
  }
  EXPECT_EQ(pool.allocate(), TaggedRef::kNullIndex);
  // Indices must be distinct.
  std::sort(got.begin(), got.end());
  EXPECT_EQ(std::adjacent_find(got.begin(), got.end()), got.end());
  pool.release(got[2]);
  EXPECT_EQ(pool.allocate(), got[2]);
}

TEST(MsQueue, FifoOrderSequential) {
  MsQueue<int> q(16);
  EXPECT_TRUE(q.empty());
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.enqueue(i));
  EXPECT_FALSE(q.empty());
  for (int i = 0; i < 10; ++i) {
    const auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.dequeue().has_value());
  EXPECT_TRUE(q.empty());
}

TEST(MsQueue, CapacityBoundRespected) {
  MsQueue<int> q(3);
  EXPECT_TRUE(q.enqueue(1));
  EXPECT_TRUE(q.enqueue(2));
  EXPECT_TRUE(q.enqueue(3));
  EXPECT_FALSE(q.enqueue(4));  // pool exhausted
  EXPECT_EQ(q.dequeue().value(), 1);
  EXPECT_TRUE(q.enqueue(4));  // node recycled
}

TEST(MsQueue, InterleavedOperations) {
  MsQueue<int> q(8);
  for (int round = 0; round < 100; ++round) {
    EXPECT_TRUE(q.enqueue(2 * round));
    EXPECT_TRUE(q.enqueue(2 * round + 1));
    EXPECT_EQ(q.dequeue().value(), 2 * round);
    EXPECT_EQ(q.dequeue().value(), 2 * round + 1);
  }
  EXPECT_TRUE(q.empty());
}

TEST(MsQueue, ConcurrentConservationAndFifoPerProducer) {
  // 2 producers x 2 consumers; every element is delivered exactly once
  // and per-producer order is preserved (MS queue linearizability
  // corollary).
  constexpr int kPerProducer = 5000;
  MsQueue<int> q(1024);
  std::atomic<bool> done{false};
  std::vector<std::vector<int>> sunk(2);
  std::vector<std::thread> threads;

  for (int p = 0; p < 2; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int v = p * kPerProducer + i;
        while (!q.enqueue(v)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&q, &done, &sunk, c] {
      for (;;) {
        const auto v = q.dequeue();
        if (v) {
          sunk[static_cast<std::size_t>(c)].push_back(*v);
        } else if (done.load()) {
          // All enqueues have completed; empty now means truly drained.
          break;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  threads[0].join();
  threads[1].join();
  done.store(true);
  threads[2].join();
  threads[3].join();

  std::vector<int> all;
  for (const auto& s : sunk) all.insert(all.end(), s.begin(), s.end());
  ASSERT_EQ(all.size(), 2u * kPerProducer);
  std::sort(all.begin(), all.end());
  for (int i = 0; i < 2 * kPerProducer; ++i) EXPECT_EQ(all[i], i);
  // Per-producer FIFO within each consumer's stream.
  for (const auto& s : sunk) {
    int last0 = -1, last1 = -1;
    for (int v : s) {
      if (v < kPerProducer) {
        EXPECT_GT(v, last0);
        last0 = v;
      } else {
        EXPECT_GT(v, last1);
        last1 = v;
      }
    }
  }
}

TEST(MsQueue, RetryCountersAccumulateUnderContention) {
  MsQueue<int> q(256);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&q] {
      for (int i = 0; i < 20000; ++i) {
        q.enqueue(i);
        q.dequeue();
      }
    });
  }
  for (auto& th : threads) th.join();
  // Retries are workload-dependent; the counter API must at least be
  // consistent (non-negative, readable after quiesce).
  EXPECT_GE(q.stats().retry_count(), 0);
  EXPECT_TRUE(q.empty());
}

TEST(TreiberStack, LifoOrderSequential) {
  TreiberStack<int> s(8);
  EXPECT_TRUE(s.empty());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(s.push(i));
  for (int i = 4; i >= 0; --i) EXPECT_EQ(s.pop().value(), i);
  EXPECT_FALSE(s.pop().has_value());
}

TEST(TreiberStack, CapacityAndRecycling) {
  TreiberStack<int> s(2);
  EXPECT_TRUE(s.push(1));
  EXPECT_TRUE(s.push(2));
  EXPECT_FALSE(s.push(3));
  EXPECT_EQ(s.pop().value(), 2);
  EXPECT_TRUE(s.push(3));
  EXPECT_EQ(s.pop().value(), 3);
  EXPECT_EQ(s.pop().value(), 1);
}

TEST(TreiberStack, ConcurrentConservation) {
  constexpr int kPerThread = 10000;
  TreiberStack<int> s(512);
  std::vector<std::thread> threads;
  std::atomic<std::int64_t> popped_sum{0};
  std::atomic<std::int64_t> popped_count{0};
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int v = t * kPerThread + i;
        while (!s.push(v)) std::this_thread::yield();
        const auto got = s.pop();
        if (got) {
          popped_sum.fetch_add(*got);
          popped_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Drain what's left.
  while (auto v = s.pop()) {
    popped_sum.fetch_add(*v);
    popped_count.fetch_add(1);
  }
  const std::int64_t n = 3LL * kPerThread;
  EXPECT_EQ(popped_count.load(), n);
  // Sum of 0..(n-1) with three disjoint ranges == sum of all pushed.
  std::int64_t expect = 0;
  for (int t = 0; t < 3; ++t)
    for (int i = 0; i < kPerThread; ++i) expect += t * kPerThread + i;
  EXPECT_EQ(popped_sum.load(), expect);
}

TEST(SpscRing, FifoAndBounds) {
  SpscRing<int> r(3);
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.push(1));
  EXPECT_TRUE(r.push(2));
  EXPECT_TRUE(r.push(3));
  EXPECT_FALSE(r.push(4));  // full
  EXPECT_EQ(r.pop().value(), 1);
  EXPECT_TRUE(r.push(4));
  EXPECT_EQ(r.pop().value(), 2);
  EXPECT_EQ(r.pop().value(), 3);
  EXPECT_EQ(r.pop().value(), 4);
  EXPECT_FALSE(r.pop().has_value());
}

TEST(SpscRing, WaitFreeProducerConsumer) {
  constexpr int kCount = 200000;
  SpscRing<int> r(64);
  std::thread producer([&r] {
    for (int i = 0; i < kCount; ++i)
      while (!r.push(i)) std::this_thread::yield();
  });
  int expect = 0;
  while (expect < kCount) {
    if (const auto v = r.pop()) {
      ASSERT_EQ(*v, expect);  // strict FIFO, no loss, no duplication
      ++expect;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(r.empty());
}

TEST(SpscRing, BatchPushPopWithWrapAround) {
  // Capacity 5 and batches of 4: after the first round the batch spans
  // the physical end of the buffer every time, so the index arithmetic
  // of push_n/pop_n is exercised across the wrap seam repeatedly.
  SpscRing<int> r(5);
  int next_in = 0;
  int next_out = 0;
  for (int round = 0; round < 23; ++round) {
    int in[4];
    for (int i = 0; i < 4; ++i) in[i] = next_in + i;
    const std::size_t pushed =
        r.push_n(static_cast<const int*>(in), 4);  // copy overload
    EXPECT_GT(pushed, 0u);
    EXPECT_LE(pushed, 4u);
    next_in += static_cast<int>(pushed);
    int out[4];
    const std::size_t popped = r.pop_n(out, 4);
    for (std::size_t i = 0; i < popped; ++i)
      EXPECT_EQ(out[i], next_out + static_cast<int>(i));  // strict FIFO
    next_out += static_cast<int>(popped);
  }
  // Drain the remainder: conservation — everything pushed comes out.
  int out[8];
  while (next_out < next_in) {
    const std::size_t popped = r.pop_n(out, 8);
    ASSERT_GT(popped, 0u);
    for (std::size_t i = 0; i < popped; ++i)
      EXPECT_EQ(out[i], next_out + static_cast<int>(i));
    next_out += static_cast<int>(popped);
  }
  EXPECT_TRUE(r.empty());
}

TEST(SpscRing, BatchPushBoundedByFreeSpaceAndMoveKeepsRemainder) {
  SpscRing<std::vector<int>> r(3);
  std::vector<int> in[5];
  for (int i = 0; i < 5; ++i) in[i] = {i, i, i};
  // Move overload: only 3 fit; the unaccepted tail must stay intact so
  // the producer can retry it.
  EXPECT_EQ(r.push_n(in, 5), 3u);
  EXPECT_EQ(in[3], (std::vector<int>{3, 3, 3}));
  EXPECT_EQ(in[4], (std::vector<int>{4, 4, 4}));
  EXPECT_EQ(r.push_n(in + 3, 2), 0u);  // full: nothing moved
  EXPECT_EQ(in[3], (std::vector<int>{3, 3, 3}));
  std::vector<int> out[4];
  EXPECT_EQ(r.pop_n(out, 4), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(out[i], (std::vector<int>{i, i, i}));
  EXPECT_EQ(r.pop_n(out, 4), 0u);
}

TEST(SpscRing, BatchProducerConsumerHammer) {
  // Wait-free batch producer vs batch consumer (the ingest-lane
  // shape): strict FIFO, no loss, no duplication across ~200k values
  // moved in uneven batch sizes.  Runs under TSan via scripts/check.sh
  // — the single release store per batch must publish every element.
  constexpr int kCount = 200'000;
  SpscRing<int> r(64);
  std::thread producer([&r] {
    int next = 0;
    int batch[17];
    while (next < kCount) {
      const int want = std::min(17, kCount - next);
      for (int i = 0; i < want; ++i) batch[i] = next + i;
      std::size_t sent = 0;
      while (sent < static_cast<std::size_t>(want)) {
        const std::size_t n = r.push_n(
            static_cast<const int*>(batch) + sent,
            static_cast<std::size_t>(want) - sent);
        if (n == 0)
          std::this_thread::yield();
        else
          sent += n;
      }
      next += want;
    }
  });
  int expect = 0;
  int out[23];
  while (expect < kCount) {
    const std::size_t n = r.pop_n(out, 23);
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], expect++);
  }
  producer.join();
  EXPECT_TRUE(r.empty());
}

// 32-byte payload: wider than the single-atomic value-slot path, so it
// exercises the byte-wise relaxed copy in annotate.hpp.  The checksum
// lets every reader verify the copy it *used* (i.e. whose claiming CAS
// succeeded) was not torn — the contract the header documents.
struct WidePayload {
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;
  std::int64_t sum = 0;

  static WidePayload make(std::int64_t seed) {
    WidePayload p;
    p.a = seed;
    p.b = seed * 3 + 1;
    p.c = ~seed;
    p.sum = p.a + p.b + p.c;
    return p;
  }
  bool coherent() const { return a + b + c == sum; }
};
static_assert(sizeof(WidePayload) == 32);
static_assert(!lockfree::detail::kAtomicValueSlot<WidePayload>);

TEST(MsQueue, WidePayloadRoundTripsSequentially) {
  MsQueue<WidePayload> q(8);
  for (std::int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(q.enqueue(WidePayload::make(i * 7919 + 1)));
    const auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->a, i * 7919 + 1);
    EXPECT_TRUE(v->coherent());
  }
  EXPECT_TRUE(q.empty());
}

TEST(MsQueue, WidePayloadSurvivesRecyclingPressure) {
  // The wide-payload analogue of the ABA hammer: a minimal pool forces
  // the optimistic pre-CAS copy to race recycling enqueuers, so under
  // TSan this is the witness that the >8-byte slot path is well-defined;
  // the coherence check proves no *used* copy was torn.
  constexpr int kThreads = 4;
  MsQueue<WidePayload> q(kThreads);
  std::vector<std::thread> threads;
  std::atomic<std::int64_t> delivered{0};
  std::atomic<bool> torn{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kHammerCycles; ++i) {
        const auto p = WidePayload::make(t * kHammerCycles + i);
        while (!q.enqueue(p)) std::this_thread::yield();
        for (;;) {
          if (const auto v = q.dequeue()) {
            if (!v->coherent()) torn.store(true);
            delivered.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(delivered.load(),
            kThreads * static_cast<std::int64_t>(kHammerCycles));
  EXPECT_TRUE(q.empty());
}

TEST(TreiberStack, WidePayloadSurvivesRecyclingPressure) {
  constexpr int kThreads = 4;
  TreiberStack<WidePayload> s(kThreads);
  std::vector<std::thread> threads;
  std::atomic<std::int64_t> delivered{0};
  std::atomic<bool> torn{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kHammerCycles; ++i) {
        const auto p = WidePayload::make(t * kHammerCycles + i);
        while (!s.push(p)) std::this_thread::yield();
        for (;;) {
          if (const auto v = s.pop()) {
            if (!v->coherent()) torn.store(true);
            delivered.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(delivered.load(),
            kThreads * static_cast<std::int64_t>(kHammerCycles));
  EXPECT_TRUE(s.empty());
}

/// Parameterized ABA hammer: tight push/pop cycles over a tiny pool from
/// multiple threads maximize node recycling; the tag scheme must keep
/// the structures consistent.
class AbaHammerTest : public ::testing::TestWithParam<int> {};

TEST_P(AbaHammerTest, QueueSurvivesRecyclingPressure) {
  const int threads_n = GetParam();
  MsQueue<int> q(static_cast<std::size_t>(threads_n));  // minimal pool
  std::vector<std::thread> threads;
  std::atomic<std::int64_t> delivered{0};
  for (int t = 0; t < threads_n; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kHammerCycles; ++i) {
        while (!q.enqueue(i)) std::this_thread::yield();
        while (!q.dequeue()) std::this_thread::yield();
        delivered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(delivered.load(), threads_n * static_cast<std::int64_t>(kHammerCycles));
  EXPECT_TRUE(q.empty());
}

INSTANTIATE_TEST_SUITE_P(Sweep, AbaHammerTest, ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace lfrt::lockfree
