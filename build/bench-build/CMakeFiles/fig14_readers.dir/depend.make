# Empty dependencies file for fig14_readers.
# This may be replaced when dependencies are built.
