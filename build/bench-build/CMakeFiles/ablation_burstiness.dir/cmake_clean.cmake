file(REMOVE_RECURSE
  "../bench/ablation_burstiness"
  "../bench/ablation_burstiness.pdb"
  "CMakeFiles/ablation_burstiness.dir/ablation_burstiness.cpp.o"
  "CMakeFiles/ablation_burstiness.dir/ablation_burstiness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_burstiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
