// Treiber lock-free LIFO stack [25] with tagged references over a fixed
// node pool — the second classic structure the paper's related work
// cites as well-suited to lock-free sharing.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "lockfree/annotate.hpp"
#include "lockfree/backoff.hpp"
#include "lockfree/node_pool.hpp"
#include "lockfree/tagged.hpp"
#include "runtime/object_stats.hpp"

namespace lfrt::lockfree {

/// Bounded multi-producer/multi-consumer lock-free LIFO.
template <typename T>
class TreiberStack {
 public:
  explicit TreiberStack(std::size_t capacity) : pool_(capacity) {}

  /// Push a copy of `value`; returns false when the pool is full.
  bool push(const T& value) {
    const std::uint32_t node = pool_.allocate();
    if (node == TaggedRef::kNullIndex) return false;
    detail::store_value_slot(pool_.at(node).value, value);
    TaggedRef top{top_.load(std::memory_order_acquire)};
    Backoff backoff;
    for (;;) {
      pool_.at(node).next.store(TaggedRef::make(top.index(), 0).bits,
                                std::memory_order_relaxed);
      TaggedRef desired = TaggedRef::make(node, top.tag() + 1);
      if (top_.compare_exchange_weak(top.bits, desired.bits,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        stats_.record_op();
        return true;
      }
      stats_.record_retry();
      stats_.record_backoff(backoff.pause());
    }
  }

  /// Pop the most recent element; empty optional when the stack is empty.
  std::optional<T> pop() {
    TaggedRef top{top_.load(std::memory_order_acquire)};
    Backoff backoff;
    for (;;) {
      if (top.is_null()) {
        stats_.record_op();
        return std::nullopt;
      }
      const TaggedRef next{
          pool_.at(top.index()).next.load(std::memory_order_acquire)};
      // Copy the value before the CAS — the node may be recycled after.
      T value = detail::load_value_slot(pool_.at(top.index()).value);
      TaggedRef desired = TaggedRef::make(next.index(), top.tag() + 1);
      if (top_.compare_exchange_weak(top.bits, desired.bits,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        pool_.release(top.index());
        stats_.record_op();
        return value;
      }
      stats_.record_retry();
      stats_.record_backoff(backoff.pause());
    }
  }

  bool empty() const {
    return TaggedRef{top_.load(std::memory_order_acquire)}.is_null();
  }

  const runtime::ObjectStats& stats() const { return stats_; }

 private:
  struct Node {
    T value{};
    std::atomic<std::uint64_t> next{0};
  };

  NodePool<Node> pool_;
  std::atomic<std::uint64_t> top_{TaggedRef::null().bits};
  runtime::ObjectStats stats_;
};

}  // namespace lfrt::lockfree
