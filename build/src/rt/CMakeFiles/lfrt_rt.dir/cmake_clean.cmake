file(REMOVE_RECURSE
  "CMakeFiles/lfrt_rt.dir/access_time.cpp.o"
  "CMakeFiles/lfrt_rt.dir/access_time.cpp.o.d"
  "CMakeFiles/lfrt_rt.dir/executor.cpp.o"
  "CMakeFiles/lfrt_rt.dir/executor.cpp.o.d"
  "CMakeFiles/lfrt_rt.dir/priority.cpp.o"
  "CMakeFiles/lfrt_rt.dir/priority.cpp.o.d"
  "liblfrt_rt.a"
  "liblfrt_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfrt_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
