// EDF+PIP tests, including the classic unbounded-priority-inversion
// scenario that plain EDF suffers and inheritance bounds — the paper's
// Section 1.1 motivation for examining lock-based alternatives.
#include <gtest/gtest.h>

#include <memory>

#include "sched/edf.hpp"
#include "sched/edf_pip.hpp"
#include "sim/simulator.hpp"
#include "support/check.hpp"

namespace lfrt {
namespace {

using sched::EdfPipScheduler;
using sched::SchedJob;

SchedJob mk(JobId id, Time critical, Time remaining,
            std::vector<std::unique_ptr<Tuf>>& tufs,
            JobId waits_on = kNoJob) {
  tufs.push_back(make_step_tuf(1.0, critical));
  SchedJob j;
  j.id = id;
  j.arrival = 0;
  j.critical = critical;
  j.remaining = remaining;
  j.tuf = tufs.back().get();
  j.waits_on = waits_on;
  return j;
}

TEST(EdfPip, DispatchesHolderOnBehalfOfBlockedHead) {
  std::vector<std::unique_ptr<Tuf>> tufs;
  const EdfPipScheduler pip;
  // Head (earliest critical) blocked on the *latest*-critical job: PIP
  // runs the holder; plain EDF would run the middle job.
  std::vector<SchedJob> jobs{mk(0, usec(100), usec(10), tufs, /*waits=*/2),
                             mk(1, usec(200), usec(10), tufs),
                             mk(2, usec(300), usec(10), tufs)};
  EXPECT_EQ(pip.build(jobs, 0).dispatch, 2);
  const sched::EdfScheduler edf;
  EXPECT_EQ(edf.build(jobs, 0).dispatch, 1);
}

TEST(EdfPip, TransitiveInheritance) {
  std::vector<std::unique_ptr<Tuf>> tufs;
  const EdfPipScheduler pip;
  std::vector<SchedJob> jobs{mk(0, usec(100), usec(10), tufs, 1),
                             mk(1, usec(200), usec(10), tufs, 2),
                             mk(2, usec(300), usec(10), tufs)};
  EXPECT_EQ(pip.build(jobs, 0).dispatch, 2);
}

TEST(EdfPip, NoBlockingBehavesLikeEdf) {
  std::vector<std::unique_ptr<Tuf>> tufs;
  const EdfPipScheduler pip;
  const sched::EdfScheduler edf;
  std::vector<SchedJob> jobs{mk(0, usec(300), usec(10), tufs),
                             mk(1, usec(100), usec(10), tufs),
                             mk(2, usec(200), usec(10), tufs)};
  const auto a = pip.build(jobs, 0);
  const auto b = edf.build(jobs, 0);
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.dispatch, b.dispatch);
}

TEST(EdfPip, CycleViolatesInvariant) {
  std::vector<std::unique_ptr<Tuf>> tufs;
  const EdfPipScheduler pip;
  std::vector<SchedJob> jobs{mk(0, usec(100), usec(10), tufs, 1),
                             mk(1, usec(200), usec(10), tufs, 0)};
  EXPECT_THROW(pip.build(jobs, 0), InvariantViolation);
}

TEST(EdfPip, EmptyViewIdles) {
  const EdfPipScheduler pip;
  EXPECT_EQ(pip.build({}, 0).dispatch, kNoJob);
}

/// The Mars-Pathfinder-shaped scenario, end to end in the simulator:
///   * L (low importance, long deadline) takes the shared lock early;
///   * H (tight deadline) arrives and blocks on the lock;
///   * a stream of M (middle deadline) jobs arrives and — under plain
///     EDF — runs instead of L, starving the lock release and killing H.
/// Under EDF+PIP, L inherits H's eligibility and releases quickly; H
/// meets its critical time.
struct InversionWorld {
  TaskSet ts;
  std::vector<Time> m_arrivals;

  // Timeline under plain EDF (r = 30us):
  //   L: arrives 0, computes to 10, acquires the lock (section 10..40
  //      uninterrupted), deadline far away (100ms).
  //   H: arrives 15 (abs critical 415us), preempts L, computes 10us,
  //      requests the lock at 25 -> blocked on L.
  //   M: arrives 30 (abs critical 530us) with 380us of compute: earlier
  //      deadline than L, later than H -> EDF runs M over the lock
  //      holder until 410; L only then finishes its section (430), far
  //      past H's 415us critical time.  Inversion killed H.
  // Under EDF+PIP, L inherits H's eligibility at 25, releases at 50,
  // and H completes at ~100us.
  InversionWorld() {
    ts.object_count = 1;

    TaskParams low;
    low.id = 0;
    low.arrival = UamSpec{1, 1, msec(100)};
    low.tuf = make_step_tuf(5.0, msec(100));
    low.exec_time = usec(100);
    low.accesses = {{0, usec(10)}};
    ts.tasks.push_back(std::move(low));

    TaskParams high;
    high.id = 1;
    high.arrival = UamSpec{1, 1, msec(100)};
    high.tuf = make_step_tuf(100.0, usec(400));
    high.exec_time = usec(30);
    high.accesses = {{0, usec(10)}};
    ts.tasks.push_back(std::move(high));

    TaskParams mid;
    mid.id = 2;
    mid.arrival = UamSpec{1, 1, usec(500)};
    mid.tuf = make_step_tuf(10.0, usec(500));
    mid.exec_time = usec(380);
    ts.tasks.push_back(std::move(mid));
    ts.validate();

    for (Time t = usec(30); t < msec(18); t += usec(500))
      m_arrivals.push_back(t);
  }

  sim::SimReport run(const sched::Scheduler& sch) {
    sim::SimConfig cfg;
    cfg.mode = sim::ShareMode::kLockBased;
    cfg.lock_access_time = usec(30);
    cfg.horizon = msec(20);
    sim::Simulator sim(ts, sch, cfg);
    sim.set_arrivals(0, {0});
    sim.set_arrivals(1, {usec(15)});
    sim.set_arrivals(2, m_arrivals);
    return sim.run();
  }
};

TEST(EdfPip, PlainEdfSuffersUnboundedInversion) {
  InversionWorld world;
  const sched::EdfScheduler edf;
  const auto rep = world.run(edf);
  // H (task 1) misses: the middle stream keeps preempting L, which
  // holds the lock H needs.
  for (const Job& j : rep.jobs) {
    if (j.task == 1) {
      EXPECT_EQ(j.state, JobState::kAborted);
    }
  }
}

TEST(EdfPip, InheritanceBoundsTheInversion) {
  InversionWorld world;
  const EdfPipScheduler pip;
  const auto rep = world.run(pip);
  for (const Job& j : rep.jobs)
    if (j.task == 1) {
      EXPECT_EQ(j.state, JobState::kCompleted);
      // Inversion bounded by L's critical section remainder: H finishes
      // well inside its 400us critical time.
      EXPECT_LE(j.sojourn(), usec(400));
    }
}

TEST(EdfPip, LockFreeAvoidsTheProblemEntirely) {
  // The paper's punchline: with lock-free sharing there is no lock to
  // invert on; plain EDF suffices.
  InversionWorld world;
  const sched::EdfScheduler edf;
  sim::SimConfig cfg;
  cfg.mode = sim::ShareMode::kLockFree;
  cfg.lockfree_access_time = usec(2);
  cfg.horizon = msec(20);
  sim::Simulator sim(world.ts, edf, cfg);
  sim.set_arrivals(0, {0});
  sim.set_arrivals(1, {usec(15)});
  sim.set_arrivals(2, world.m_arrivals);
  const auto rep = sim.run();
  for (const Job& j : rep.jobs) {
    if (j.task == 1) {
      EXPECT_EQ(j.state, JobState::kCompleted);
    }
  }
}

}  // namespace
}  // namespace lfrt
