#include "runtime/report_json.hpp"

#include <cstdio>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "runtime/json_min.hpp"

namespace lfrt::runtime {
namespace {

using jsonmin::find;
using jsonmin::get_double;
using jsonmin::get_int;
using jsonmin::JsonArray;
using jsonmin::JsonObject;
using jsonmin::JsonValue;
using jsonmin::Parser;

// ---- writer ----------------------------------------------------------

void append_double(std::string& out, double v) {
  // max_digits10 so the decimal text reproduces the exact binary value.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_int(std::string& out, std::int64_t v) {
  out += std::to_string(v);
}

void append_job(std::string& out, const Job& j) {
  out += R"({"id":)";
  append_int(out, j.id);
  out += R"(,"task":)";
  append_int(out, j.task);
  out += R"(,"arrival":)";
  append_int(out, j.arrival);
  out += R"(,"critical_abs":)";
  append_int(out, j.critical_abs);
  out += R"(,"state":)";
  append_int(out, static_cast<std::int64_t>(j.state));
  out += R"(,"exec_actual":)";
  append_int(out, j.exec_actual);
  out += R"(,"retries":)";
  append_int(out, j.retries);
  out += R"(,"blockings":)";
  append_int(out, j.blockings);
  out += R"(,"preemptions":)";
  append_int(out, j.preemptions);
  out += R"(,"backoff_spins":)";
  append_int(out, j.backoff_spins);
  out += R"(,"completion":)";
  append_int(out, j.completion);
  out += '}';
}

}  // namespace

std::string to_json(const RunReport& rep) {
  std::string out;
  out.reserve(256 + rep.jobs.size() * 176 + rep.contention.cells.size() * 24);
  out += R"({"counted_jobs":)";
  append_int(out, rep.counted_jobs);
  out += R"(,"completed":)";
  append_int(out, rep.completed);
  out += R"(,"aborted":)";
  append_int(out, rep.aborted);
  out += R"(,"accrued_utility":)";
  append_double(out, rep.accrued_utility);
  out += R"(,"max_possible_utility":)";
  append_double(out, rep.max_possible_utility);
  out += R"(,"dispatches":)";
  append_int(out, rep.dispatches);
  out += R"(,"sched_invocations":)";
  append_int(out, rep.sched_invocations);
  out += R"(,"sched_ops":)";
  append_int(out, rep.sched_ops);
  out += R"(,"total_retries":)";
  append_int(out, rep.total_retries);
  out += R"(,"total_blockings":)";
  append_int(out, rep.total_blockings);
  out += R"(,"total_preemptions":)";
  append_int(out, rep.total_preemptions);
  out += R"(,"total_backoff_spins":)";
  append_int(out, rep.total_backoff_spins);
  // Service-mode admission + percentile fields (PR 7).  Emitted only
  // when any is non-zero so pre-service reports stay byte-identical;
  // parsed optionally with zero defaults.
  if (rep.rejected != 0 || rep.degraded != 0 || rep.sojourn_p50_ns != 0 ||
      rep.sojourn_p99_ns != 0 || rep.sojourn_p999_ns != 0 ||
      rep.ingest_p50_ns != 0 || rep.ingest_p99_ns != 0 ||
      rep.ingest_p999_ns != 0) {
    out += R"(,"rejected":)";
    append_int(out, rep.rejected);
    out += R"(,"degraded":)";
    append_int(out, rep.degraded);
    out += R"(,"sojourn_p50_ns":)";
    append_int(out, rep.sojourn_p50_ns);
    out += R"(,"sojourn_p99_ns":)";
    append_int(out, rep.sojourn_p99_ns);
    out += R"(,"sojourn_p999_ns":)";
    append_int(out, rep.sojourn_p999_ns);
    out += R"(,"ingest_p50_ns":)";
    append_int(out, rep.ingest_p50_ns);
    out += R"(,"ingest_p99_ns":)";
    append_int(out, rep.ingest_p99_ns);
    out += R"(,"ingest_p999_ns":)";
    append_int(out, rep.ingest_p999_ns);
  }
  // Per-CPU-slot breakdowns (PR 10).  Emitted only when filled so
  // legacy reports stay byte-identical; parsed optionally.
  if (!rep.cpu_busy.empty()) {
    out += R"(,"cpu_busy":[)";
    for (std::size_t i = 0; i < rep.cpu_busy.size(); ++i) {
      if (i > 0) out += ',';
      append_int(out, rep.cpu_busy[i]);
    }
    out += ']';
  }
  if (!rep.cpu_jobs.empty()) {
    out += R"(,"cpu_jobs":[)";
    for (std::size_t i = 0; i < rep.cpu_jobs.size(); ++i) {
      if (i > 0) out += ',';
      append_int(out, rep.cpu_jobs[i]);
    }
    out += ']';
  }
  out += R"(,"jobs":[)";
  for (std::size_t i = 0; i < rep.jobs.size(); ++i) {
    if (i > 0) out += ',';
    append_job(out, rep.jobs[i]);
  }
  out += R"(],"contention":{"objects":)";
  append_int(out, rep.contention.objects);
  out += R"(,"tasks":)";
  append_int(out, rep.contention.tasks);
  out += R"(,"cells":[)";
  for (std::size_t i = 0; i < rep.contention.cells.size(); ++i) {
    const ContentionCell& c = rep.contention.cells[i];
    if (i > 0) out += ',';
    out += '[';
    append_int(out, c.ops);
    out += ',';
    append_int(out, c.retries);
    out += ',';
    append_int(out, c.blockings);
    out += ']';
  }
  out += ']';
  // Shard dimension: one live stripe count per object, filled by both
  // substrates whenever any object carries a sharded structure.  Absent
  // from legacy reports, so emit only when present and parse optionally.
  if (!rep.contention.shard_counts.empty()) {
    out += R"(,"shard_counts":[)";
    for (std::size_t i = 0; i < rep.contention.shard_counts.size(); ++i) {
      if (i > 0) out += ',';
      append_int(out, rep.contention.shard_counts[i]);
    }
    out += ']';
  }
  out += "}}";
  return out;
}

RunReport from_json(std::string_view json) {
  const JsonValue root = Parser(json).parse();
  const JsonObject* o = root.as_object();
  if (o == nullptr)
    throw std::runtime_error("report_json: top level must be an object");

  RunReport rep;
  rep.counted_jobs = get_int(*o, "counted_jobs");
  rep.completed = get_int(*o, "completed");
  rep.aborted = get_int(*o, "aborted");
  rep.accrued_utility = get_double(*o, "accrued_utility");
  rep.max_possible_utility = get_double(*o, "max_possible_utility");
  rep.dispatches = get_int(*o, "dispatches");
  rep.sched_invocations = get_int(*o, "sched_invocations");
  rep.sched_ops = get_int(*o, "sched_ops");
  rep.total_retries = get_int(*o, "total_retries");
  rep.total_blockings = get_int(*o, "total_blockings");
  rep.total_preemptions = get_int(*o, "total_preemptions");
  rep.total_backoff_spins = get_int(*o, "total_backoff_spins");

  // Service-mode fields: absent in legacy reports (defaults stay 0).
  rep.rejected = get_int(*o, "rejected", 0);
  rep.degraded = get_int(*o, "degraded", 0);
  rep.sojourn_p50_ns = get_int(*o, "sojourn_p50_ns", 0);
  rep.sojourn_p99_ns = get_int(*o, "sojourn_p99_ns", 0);
  rep.sojourn_p999_ns = get_int(*o, "sojourn_p999_ns", 0);
  rep.ingest_p50_ns = get_int(*o, "ingest_p50_ns", 0);
  rep.ingest_p99_ns = get_int(*o, "ingest_p99_ns", 0);
  rep.ingest_p999_ns = get_int(*o, "ingest_p999_ns", 0);
  if (rep.rejected < 0 || rep.degraded < 0)
    throw std::runtime_error(
        "report_json: rejected/degraded must be non-negative");
  const auto check_pcts = [](std::int64_t p50, std::int64_t p99,
                             std::int64_t p999, const char* what) {
    if (p50 < 0 || p99 < 0 || p999 < 0)
      throw std::runtime_error(std::string("report_json: negative ") + what +
                               " percentile");
    if (p50 > p99 || p99 > p999)
      throw std::runtime_error(std::string("report_json: ") + what +
                               " percentiles must be monotone "
                               "(p50 <= p99 <= p999)");
  };
  check_pcts(rep.sojourn_p50_ns, rep.sojourn_p99_ns, rep.sojourn_p999_ns,
             "sojourn");
  check_pcts(rep.ingest_p50_ns, rep.ingest_p99_ns, rep.ingest_p999_ns,
             "ingest");

  // Per-CPU-slot breakdowns: absent in legacy reports (stay empty).
  const auto parse_int_array = [&](const char* key,
                                   auto& dst) {
    const JsonValue* v = find(*o, key);
    if (v == nullptr) return;
    const JsonArray* arr = v->as_array();
    if (arr == nullptr)
      throw std::runtime_error(std::string("report_json: ") + key +
                               " must be an array");
    dst.reserve(arr->size());
    for (const JsonValue& e : *arr) {
      if (!e.is_number())
        throw std::runtime_error(std::string("report_json: ") + key +
                                 " entries must be numbers");
      dst.push_back(e.as_int());
    }
  };
  parse_int_array("cpu_busy", rep.cpu_busy);
  parse_int_array("cpu_jobs", rep.cpu_jobs);

  if (const JsonValue* jobs = find(*o, "jobs")) {
    const JsonArray* arr = jobs->as_array();
    if (arr == nullptr)
      throw std::runtime_error("report_json: jobs must be an array");
    rep.jobs.reserve(arr->size());
    for (const JsonValue& jv : *arr) {
      const JsonObject* jo = jv.as_object();
      if (jo == nullptr)
        throw std::runtime_error("report_json: job entries must be objects");
      Job j;
      j.id = get_int(*jo, "id", kNoJob);
      j.task = static_cast<TaskId>(get_int(*jo, "task", -1));
      j.arrival = get_int(*jo, "arrival");
      j.critical_abs = get_int(*jo, "critical_abs");
      const std::int64_t state = get_int(*jo, "state");
      if (state < 0 || state > static_cast<std::int64_t>(JobState::kAborted))
        throw std::runtime_error("report_json: job state out of range");
      j.state = static_cast<JobState>(state);
      j.exec_actual = get_int(*jo, "exec_actual");
      j.retries = get_int(*jo, "retries");
      j.blockings = get_int(*jo, "blockings");
      j.preemptions = get_int(*jo, "preemptions");
      j.backoff_spins = get_int(*jo, "backoff_spins");
      j.completion = get_int(*jo, "completion", -1);
      rep.jobs.push_back(std::move(j));
    }
  }

  if (const JsonValue* cont = find(*o, "contention")) {
    const JsonObject* co = cont->as_object();
    if (co == nullptr)
      throw std::runtime_error("report_json: contention must be an object");
    const auto objects = static_cast<std::int32_t>(get_int(*co, "objects"));
    const auto tasks = static_cast<std::int32_t>(get_int(*co, "tasks"));
    if (objects < 0 || tasks < 0)
      throw std::runtime_error("report_json: negative contention dims");
    ContentionMatrix m(objects, tasks);
    const JsonValue* cells = find(*co, "cells");
    const JsonArray* arr = cells != nullptr ? cells->as_array() : nullptr;
    if (arr == nullptr)
      throw std::runtime_error("report_json: contention.cells must be an "
                               "array");
    if (arr->size() != m.cells.size())
      throw std::runtime_error(
          "report_json: cells length != objects * tasks");
    for (std::size_t i = 0; i < arr->size(); ++i) {
      const JsonArray* triple = (*arr)[i].as_array();
      if (triple == nullptr || triple->size() != 3 ||
          !(*triple)[0].is_number() || !(*triple)[1].is_number() ||
          !(*triple)[2].is_number())
        throw std::runtime_error(
            "report_json: each cell must be [ops, retries, blockings]");
      m.cells[i].ops = (*triple)[0].as_int();
      m.cells[i].retries = (*triple)[1].as_int();
      m.cells[i].blockings = (*triple)[2].as_int();
    }
    if (const JsonValue* sc = find(*co, "shard_counts")) {
      const JsonArray* sarr = sc->as_array();
      if (sarr == nullptr)
        throw std::runtime_error(
            "report_json: shard_counts must be an array");
      if (sarr->size() != static_cast<std::size_t>(objects))
        throw std::runtime_error(
            "report_json: shard_counts length != objects");
      m.shard_counts.reserve(sarr->size());
      for (const JsonValue& v : *sarr) {
        if (!v.is_number())
          throw std::runtime_error(
              "report_json: shard_counts entries must be numbers");
        m.shard_counts.push_back(static_cast<std::int32_t>(v.as_int()));
      }
    }
    rep.contention = std::move(m);
  }

  return rep;
}

std::string object_specs_to_json(const std::vector<ObjectSpec>& specs) {
  std::string out = "[";
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const ObjectSpec& s = specs[i];
    if (i > 0) out += ',';
    out += R"({"kind":")" + to_string(s.kind) + '"';
    out += R"(,"impl":")" + to_string(s.impl) + '"';
    out += R"(,"shards":)";
    append_int(out, s.shards);
    out += R"(,"adapt":)";
    out += s.adapt ? "true" : "false";
    out += '}';
  }
  out += ']';
  return out;
}

std::vector<ObjectSpec> object_specs_from_json(std::string_view json) {
  const JsonValue root = Parser(json).parse();
  const JsonArray* arr = root.as_array();
  if (arr == nullptr)
    throw std::runtime_error("object_specs: expected a JSON array");
  std::vector<ObjectSpec> specs;
  specs.reserve(arr->size());
  for (const JsonValue& v : *arr) {
    const JsonObject* o = v.as_object();
    if (o == nullptr)
      throw std::runtime_error("object_specs: each element must be an object");
    ObjectSpec s;
    const JsonValue* kv = find(*o, "kind");
    const std::string* ks = kv != nullptr ? kv->as_string() : nullptr;
    if (ks == nullptr)
      throw std::runtime_error("object_specs: missing \"kind\" string");
    if (!parse_object_kind(*ks, &s.kind))
      throw std::runtime_error(
          "object_specs: unknown kind \"" + *ks +
          "\" (accepted: queue, stack, buffer, snapshot)");
    const JsonValue* iv = find(*o, "impl");
    const std::string* is = iv != nullptr ? iv->as_string() : nullptr;
    if (is == nullptr)
      throw std::runtime_error("object_specs: missing \"impl\" string");
    if (!parse_object_impl(*is, &s.impl))
      throw std::runtime_error(
          "object_specs: unknown impl \"" + *is +
          "\" (accepted: lock-free, mutex, ticket, anderson, mcs, and the "
          "legacy alias lock-based)");
    s.shards = static_cast<std::int32_t>(get_int(*o, "shards", 1));
    if (const JsonValue* av = find(*o, "adapt")) {
      const bool* b = std::get_if<bool>(&av->v);
      if (b == nullptr)
        throw std::runtime_error("object_specs: \"adapt\" must be a bool");
      s.adapt = *b;
    }
    specs.push_back(s);
  }
  return specs;
}

}  // namespace lfrt::runtime
