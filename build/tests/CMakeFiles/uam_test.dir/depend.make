# Empty dependencies file for uam_test.
# This may be replaced when dependencies are built.
