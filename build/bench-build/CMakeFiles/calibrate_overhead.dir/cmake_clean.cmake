file(REMOVE_RECURSE
  "../bench/calibrate_overhead"
  "../bench/calibrate_overhead.pdb"
  "CMakeFiles/calibrate_overhead.dir/calibrate_overhead.cpp.o"
  "CMakeFiles/calibrate_overhead.dir/calibrate_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
