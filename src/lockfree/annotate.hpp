// Value-slot access for the node-based structures' optimistic-copy
// protocol.
//
// MsQueue::dequeue and TreiberStack::pop copy a node's value slot
// *before* the CAS that claims the node: after a successful CAS the
// node may be recycled at any moment, so the copy must happen first
// (Michael & Scott [21], and the comment at each site).  When the CAS
// then fails — the node was recycled mid-read and a concurrent
// enqueue/push was writing a new value into it — the copy is discarded
// and the operation retries; the TaggedRef tag is what detects the
// recycling (the ABA defence tests/lockfree_test.cpp hammers).
//
// That overlap makes the plain-data accesses a formal data race even
// though the stale copy is never used, so every slot access goes
// through the helpers below as *relaxed atomics*:
//
//  - payloads that fit a machine word use one std::atomic_ref<T>
//    load/store — zero overhead on x86/ARM;
//  - wider payloads are copied byte-wise through
//    std::atomic_ref<unsigned char>.  A reader racing a writer may
//    assemble a *torn* value, but never undefined behaviour — and the
//    contract below guarantees the torn value is discarded.
//
// Contract (what makes the torn read safe): callers must only *use* a
// loaded value after a tag-checked CAS on the containing structure
// succeeds against the TaggedRef observed *before* the load.  CAS
// success proves the node was not recycled across the read window, so
// no writer overlapped it (store_value_slot runs only on freshly
// allocated nodes, before they are published) and the copy is whole.
// On CAS failure the copy — torn or not — must be thrown away and the
// operation retried.  The tag acts as the version counter of a seqlock,
// with the structure's existing CAS standing in for the re-check.
// T must be trivially copyable; there is no plain-copy fallback.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <type_traits>

#if defined(__SANITIZE_THREAD__)
#define LFRT_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LFRT_TSAN_ACTIVE 1
#endif
#endif

namespace lfrt::lockfree::detail {

/// Word-sized trivially copyable payloads take the single-atomic path.
template <typename T>
inline constexpr bool kAtomicValueSlot =
    std::is_trivially_copyable_v<T> && sizeof(T) <= sizeof(std::uint64_t) &&
    alignof(T) <= alignof(std::uint64_t);

/// Publish a value into a (possibly observed-by-stale-readers) slot.
template <typename T>
void store_value_slot(T& slot, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>,
                "value-slot payloads are copied bytewise under races; "
                "only trivially copyable types are well-defined");
  if constexpr (kAtomicValueSlot<T>) {
    std::atomic_ref<T>(slot).store(v, std::memory_order_relaxed);
  } else {
    const auto bytes = std::bit_cast<std::array<unsigned char, sizeof(T)>>(v);
    auto* dst = reinterpret_cast<unsigned char*>(&slot);
    for (std::size_t i = 0; i < sizeof(T); ++i)
      std::atomic_ref<unsigned char>(dst[i]).store(bytes[i],
                                                   std::memory_order_relaxed);
  }
}

/// Optimistic copy of a possibly-recycled node's value; the caller's
/// tag-checked CAS discards stale (possibly torn) copies — see the
/// contract at the top of this header.
template <typename T>
T load_value_slot(T& slot) {
  static_assert(std::is_trivially_copyable_v<T>,
                "value-slot payloads are copied bytewise under races; "
                "only trivially copyable types are well-defined");
  if constexpr (kAtomicValueSlot<T>) {
    return std::atomic_ref<T>(slot).load(std::memory_order_relaxed);
  } else {
    std::array<unsigned char, sizeof(T)> bytes;
    auto* src = reinterpret_cast<unsigned char*>(&slot);
    for (std::size_t i = 0; i < sizeof(T); ++i)
      bytes[i] =
          std::atomic_ref<unsigned char>(src[i]).load(std::memory_order_relaxed);
    return std::bit_cast<T>(bytes);
  }
}

}  // namespace lfrt::lockfree::detail
