file(REMOVE_RECURSE
  "CMakeFiles/mutual_preemption.dir/mutual_preemption.cpp.o"
  "CMakeFiles/mutual_preemption.dir/mutual_preemption.cpp.o.d"
  "mutual_preemption"
  "mutual_preemption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutual_preemption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
