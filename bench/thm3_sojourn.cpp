// Theorem 3 validation: sweep the access-time ratio s/r and compare
// measured mean sojourn times under lock-free vs lock-based RUA against
// the predicted preference threshold (s/r < 2/3 sufficient when
// m_i <= n_i).
//
// The theorem bounds *worst-case* sojourns, so the empirical crossover
// (where lock-free stops being faster on average) must lie at an s/r no
// smaller than the analytic sufficient threshold.
//
// Part two re-locates the crossover *per lock mechanism*: each lock in
// the zoo gets its calibrated cost shape (base + per-contender slope —
// ticket steep, anderson flatter, mcs near-flat) rescaled into the
// sweep's regime, and the same sweep finds where lock-free stops
// winning against that particular mechanism.  The headline artifact is
// the crossover table: mechanisms with a steeper contention slope push
// their crossover right (lock-free stays preferable longer), exactly
// the refinement the flat-scalar Theorem 3 cannot express.
#include <cmath>

#include "analysis/bounds.hpp"
#include "common.hpp"
#include "runtime/calibrate.hpp"

int main(int argc, char** argv) {
  using namespace lfrt;
  bench::init(argc, argv);
  bench::print_header("Theorem 3", "sojourn crossover vs s/r threshold");

  workload::WorkloadSpec spec;
  spec.task_count = 6;
  spec.object_count = 3;
  spec.accesses_per_job = 2;
  spec.avg_exec = usec(300);
  spec.load = 0.9;
  spec.seed = 21;
  const TaskSet ts = workload::make_task_set(spec);

  double min_threshold = 1.0;
  for (const auto& t : ts.tasks)
    min_threshold =
        std::min(min_threshold, analysis::lockfree_ratio_threshold(ts, t.id));
  std::cout << "analytic sufficient threshold (min over tasks): "
            << Table::num(min_threshold, 3) << "\n\n";

  const Time r = usec(40);
  Table table({"s/r", "mean sojourn LF (us)", "mean sojourn LB (us)",
               "LF faster", "predicted sufficient"});

  double crossover = -1.0;
  for (const double ratio : {0.1, 0.25, 0.5, 0.66, 0.8, 1.0, 1.5, 2.0}) {
    const Time s = static_cast<Time>(static_cast<double>(r) * ratio);
    bench::RunParams rp;
    rp.r = r;
    rp.s = s;
    rp.repeats = 5;

    auto mean_sojourn = [&](sim::ShareMode mode) {
      rp.mode = mode;
      // Repeats fan out over the bench pool; the sojourn statistics are
      // reduced in repeat order, so the mean is thread-count-invariant.
      const auto reports = exp::parallel_map(
          bench::pool(), rp.repeats, [&](std::int64_t rep) {
            sim::SimConfig cfg;
            cfg.mode = mode;
            cfg.lock_access_time = r;
            cfg.lockfree_access_time = s;
            cfg.sched_ns_per_op = rp.ns_per_op;
            Time max_window = 0;
            for (const auto& t : ts.tasks)
              max_window = std::max(max_window, t.arrival.window);
            cfg.horizon = max_window * 150;
            sim::Simulator sim(ts, bench::scheduler_for(mode), cfg);
            sim.seed_arrivals(500 + static_cast<std::uint64_t>(rep));
            return sim.run();
          });
      RunningStats st;
      for (const auto& rep_out : reports)
        for (const Job& j : rep_out.jobs)
          if (j.state == JobState::kCompleted)
            st.add(to_usec(j.sojourn()));
      return st.mean();
    };

    const double lf = mean_sojourn(sim::ShareMode::kLockFree);
    const double lb = mean_sojourn(sim::ShareMode::kLockBased);
    const bool lf_faster = lf < lb;
    if (!lf_faster && crossover < 0) crossover = ratio;
    table.add_row({Table::num(ratio, 2), Table::num(lf, 1),
                   Table::num(lb, 1), lf_faster ? "yes" : "no",
                   ratio < min_threshold ? "yes" : "-"});
  }
  table.print();
  std::cout << "\nempirical crossover s/r: "
            << (crossover < 0 ? std::string("none (lock-free always faster)")
                              : Table::num(crossover, 2))
            << "  (must be >= analytic sufficient threshold "
            << Table::num(min_threshold, 3) << ")\n";

  // ---- part two: per-impl crossover with calibrated cost shapes ------
  runtime::ExecConfig cal_probe;
  const runtime::AccessCalibration cal =
      runtime::calibrate(cal_probe, ts, 300);
  std::cout << "\nper-impl crossover — calibrated cost model "
            << (cal.model.enabled ? "enabled" : "DISABLED") << " ("
            << (cal.from_cache ? "cached" : "measured") << "):\n";

  // The calibrated cells sit at this host's nanosecond structure-op
  // scale — negligible next to 300 us jobs.  To relocate the crossover
  // we keep each mechanism's *shape* (slope relative to base) and
  // rescale the cell so its base lands at the sweep's magnitude.
  const auto rescale = [](runtime::AccessCost c, Time target_base) {
    const double f = static_cast<double>(target_base) /
                     static_cast<double>(std::max<Time>(1, c.base));
    const auto mul = [f](Time t) {
      return static_cast<Time>(
          std::llround(static_cast<double>(t) * f));
    };
    c.per_contender = mul(c.per_contender);
    c.per_segment = mul(c.per_segment);
    c.retry_penalty = mul(c.retry_penalty);
    c.base = target_base;
    return c;
  };

  const runtime::ObjectKind kind = runtime::ObjectKind::kQueue;
  const auto mean_sojourn_model =
      [&](sim::ShareMode mode, runtime::ObjectImpl impl,
          const runtime::CostModel& model) {
        const auto specs =
            runtime::uniform_objects(ts.object_count, kind, impl);
        const auto reports = exp::parallel_map(
            bench::pool(), 3, [&](std::int64_t rep) {
              sim::SimConfig cfg;
              cfg.mode = mode;
              cfg.lock_access_time = r;
              cfg.lockfree_access_time = r;  // unused: model enabled
              cfg.cost_model = model;
              cfg.objects = specs;
              cfg.sched_ns_per_op = bench::kDefaultNsPerOp;
              Time max_window = 0;
              for (const auto& t : ts.tasks)
                max_window = std::max(max_window, t.arrival.window);
              cfg.horizon = max_window * 150;
              sim::Simulator sim(ts, bench::scheduler_for(mode), cfg);
              sim.seed_arrivals(700 + static_cast<std::uint64_t>(rep));
              return sim.run();
            });
        RunningStats st;
        for (const auto& rep_out : reports)
          for (const Job& j : rep_out.jobs)
            if (j.state == JobState::kCompleted)
              st.add(to_usec(j.sojourn()));
        return st.mean();
      };

  Table itable({"impl", "base (ns)", "slope (ns/ctd)", "s_eff/r_eff",
                "LF wins (cal)", "crossover s/r", "analytic thr"});
  for (const runtime::ObjectImpl impl : runtime::lock_impls()) {
    const runtime::AccessCost cell = cal.model.at(kind, impl);

    // At the raw calibrated costs: Theorem 3 per task against this
    // mechanism, plus the mean effective ratio it compares.
    int wins = 0;
    double ratio_sum = 0.0;
    for (const auto& t : ts.tasks) {
      if (analysis::lockfree_wins_cost(ts, t.id, kind, impl, cal.model))
        ++wins;
      const Time s_eff = analysis::effective_access_cost(
          ts, t.id, kind, runtime::ObjectImpl::kLockFree, cal.model);
      const Time r_eff =
          analysis::effective_access_cost(ts, t.id, kind, impl, cal.model);
      ratio_sum += static_cast<double>(s_eff) / static_cast<double>(r_eff);
    }
    const double cal_ratio =
        ratio_sum / static_cast<double>(ts.tasks.size());

    // Rescaled sweep: lock cell base pinned at r, lock-free cell base
    // swept as ratio * r, both keeping their calibrated shapes.
    runtime::CostModel lb_model = cal.model;
    lb_model.at(kind, impl) = rescale(cell, r);
    double cross = -1.0;
    for (const double ratio : {0.1, 0.25, 0.5, 0.66, 0.8, 1.0, 1.5, 2.0}) {
      runtime::CostModel lf_model = cal.model;
      lf_model.at(kind, runtime::ObjectImpl::kLockFree) = rescale(
          cal.model.at(kind, runtime::ObjectImpl::kLockFree),
          static_cast<Time>(static_cast<double>(r) * ratio));
      const double lf = mean_sojourn_model(sim::ShareMode::kLockFree,
                                           runtime::ObjectImpl::kLockFree,
                                           lf_model);
      const double lb =
          mean_sojourn_model(sim::ShareMode::kLockBased, impl, lb_model);
      if (lf >= lb) {
        cross = ratio;
        break;
      }
    }
    itable.add_row(
        {runtime::to_string(impl), std::to_string(cell.base),
         std::to_string(cell.per_contender), Table::num(cal_ratio, 3),
         std::to_string(wins) + "/" + std::to_string(ts.tasks.size()),
         cross < 0 ? std::string("none") : Table::num(cross, 2),
         Table::num(min_threshold, 3)});
  }
  itable.print();
  std::cout << "\nper-impl crossover table: lock-free stays preferable "
               "below each mechanism's crossover; steeper contention "
               "slopes push the crossover right.\n";
  return 0;
}
