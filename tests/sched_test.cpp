// Unit tests for the RUA scheduler (lock-based and lock-free) and the
// EDF baseline, including the paper's worked examples (Figures 3-5).
#include <gtest/gtest.h>

#include <memory>

#include "sched/edf.hpp"
#include "sched/rua.hpp"
#include "support/check.hpp"
#include "tuf/tuf.hpp"

namespace lfrt {
namespace {

using sched::RuaScheduler;
using sched::SchedJob;
using sched::ScheduleResult;
using sched::Sharing;

/// Test fixture holding TUFs alive for the SchedJob views.
class SchedTest : public ::testing::Test {
 protected:
  /// Make a job with a step TUF of the given height/critical time.
  SchedJob job(JobId id, double height, Time critical, Time remaining,
               JobId waits_on = kNoJob, Time arrival = 0) {
    tufs_.push_back(make_step_tuf(height, critical));
    SchedJob j;
    j.id = id;
    j.arrival = arrival;
    j.critical = arrival + critical;
    j.remaining = remaining;
    j.tuf = tufs_.back().get();
    j.waits_on = waits_on;
    return j;
  }

  std::vector<std::unique_ptr<Tuf>> tufs_;
};

TEST_F(SchedTest, EmptyJobListYieldsIdle) {
  const RuaScheduler rua(Sharing::kLockFree);
  const auto res = rua.build({}, 0);
  EXPECT_TRUE(res.schedule.empty());
  EXPECT_EQ(res.dispatch, kNoJob);
  EXPECT_TRUE(res.rejected.empty());
}

TEST_F(SchedTest, SingleJobDispatched) {
  const RuaScheduler rua(Sharing::kLockFree);
  const auto res = rua.build({job(7, 10.0, usec(100), usec(10))}, 0);
  ASSERT_EQ(res.schedule.size(), 1u);
  EXPECT_EQ(res.schedule[0], 7);
  EXPECT_EQ(res.dispatch, 7);
}

TEST_F(SchedTest, UnderloadStepTufsProducesEcfOrder) {
  // Paper, Section 3.4: during underloads with step TUFs and no sharing,
  // RUA's output is an ECF (EDF) schedule and nothing is rejected.
  const RuaScheduler rua(Sharing::kLockFree);
  std::vector<SchedJob> jobs;
  jobs.push_back(job(0, 5.0, usec(300), usec(10)));
  jobs.push_back(job(1, 50.0, usec(100), usec(10)));
  jobs.push_back(job(2, 20.0, usec(200), usec(10)));
  const auto res = rua.build(jobs, 0);
  ASSERT_EQ(res.schedule.size(), 3u);
  EXPECT_EQ(res.schedule[0], 1);
  EXPECT_EQ(res.schedule[1], 2);
  EXPECT_EQ(res.schedule[2], 0);
  EXPECT_TRUE(res.rejected.empty());
  EXPECT_EQ(res.dispatch, 1);
}

TEST_F(SchedTest, RuaMatchesEdfDuringUnderload) {
  const RuaScheduler rua(Sharing::kLockFree);
  const sched::EdfScheduler edf;
  std::vector<SchedJob> jobs;
  for (int i = 0; i < 8; ++i)
    jobs.push_back(job(i, 10.0 + i, usec(100 + 37 * i), usec(3)));
  const auto r1 = rua.build(jobs, 0);
  const auto r2 = edf.build(jobs, 0);
  EXPECT_EQ(r1.schedule, r2.schedule);
  EXPECT_EQ(r1.dispatch, r2.dispatch);
}

TEST_F(SchedTest, OverloadRejectsLowestPud) {
  // Two jobs, only one can meet its critical time; the lower-PUD job is
  // rejected and the head maximizes utility density.
  const RuaScheduler rua(Sharing::kLockFree);
  std::vector<SchedJob> jobs;
  jobs.push_back(job(0, 100.0, usec(10), usec(9)));  // PUD 100/9
  jobs.push_back(job(1, 10.0, usec(10), usec(9)));   // PUD 10/9
  const auto res = rua.build(jobs, 0);
  ASSERT_EQ(res.schedule.size(), 1u);
  EXPECT_EQ(res.schedule[0], 0);
  ASSERT_EQ(res.rejected.size(), 1u);
  EXPECT_EQ(res.rejected[0], 1);
}

TEST_F(SchedTest, OverloadPrefersImportanceOverUrgency) {
  // The more urgent job is less important: UA scheduling favors the
  // important one during overload (the paper's core motivation).
  const RuaScheduler rua(Sharing::kLockFree);
  std::vector<SchedJob> jobs;
  jobs.push_back(job(0, 1.0, usec(10), usec(8)));    // urgent, unimportant
  jobs.push_back(job(1, 100.0, usec(12), usec(8)));  // later, important
  const auto res = rua.build(jobs, 0);
  ASSERT_EQ(res.schedule.size(), 1u);
  EXPECT_EQ(res.schedule[0], 1);
  EXPECT_EQ(res.dispatch, 1);
}

TEST_F(SchedTest, DependencyOrdersHolderFirst) {
  // T1 waits on T2: the schedule must run T2 before T1 and dispatch T2.
  const RuaScheduler rua(Sharing::kLockBased);
  std::vector<SchedJob> jobs;
  jobs.push_back(job(1, 50.0, usec(100), usec(10), /*waits_on=*/2));
  jobs.push_back(job(2, 5.0, usec(200), usec(10)));
  const auto res = rua.build(jobs, 0);
  ASSERT_EQ(res.schedule.size(), 2u);
  EXPECT_EQ(res.schedule[0], 2);
  EXPECT_EQ(res.schedule[1], 1);
  EXPECT_EQ(res.dispatch, 2);
}

TEST_F(SchedTest, TransitiveChainFullyOrdered) {
  // Figure 3: T1 -> T2 -> T3; schedule must be T3, T2, T1.
  const RuaScheduler rua(Sharing::kLockBased);
  std::vector<SchedJob> jobs;
  jobs.push_back(job(1, 90.0, usec(100), usec(10), 2));
  jobs.push_back(job(2, 5.0, usec(300), usec(10), 3));
  jobs.push_back(job(3, 1.0, usec(200), usec(10)));
  const auto res = rua.build(jobs, 0);
  ASSERT_EQ(res.schedule.size(), 3u);
  EXPECT_EQ(res.schedule[0], 3);
  EXPECT_EQ(res.schedule[1], 2);
  EXPECT_EQ(res.schedule[2], 1);
  EXPECT_EQ(res.dispatch, 3);
}

TEST_F(SchedTest, Figure4CriticalTimeClamping) {
  // T1's chain is <T2, T1> with C2 > C1: T2 must still precede T1, with
  // its effective critical time clamped to C1 for the feasibility test.
  const RuaScheduler rua(Sharing::kLockBased);
  std::vector<SchedJob> jobs;
  jobs.push_back(job(1, 50.0, usec(50), usec(10), 2));
  jobs.push_back(job(2, 5.0, usec(500), usec(45)));
  // Without clamping, T2 (C=500) would pass feasibility anywhere; with
  // clamping, T2 must finish by C1=50us: 45+10 = 55 > 50 -> the
  // aggregate is infeasible and T1 is rejected; T2 alone survives via
  // its own PUD-order examination.
  const auto res = rua.build(jobs, 0);
  ASSERT_EQ(res.rejected.size(), 1u);
  EXPECT_EQ(res.rejected[0], 1);
  ASSERT_EQ(res.schedule.size(), 1u);
  EXPECT_EQ(res.schedule[0], 2);
}

TEST_F(SchedTest, Figure5RemovalAndReinsertion) {
  // The paper's worked example: chains <T1>, <T1,T2>, <T1,T3>, PUD order
  // T2, T1, T3, and C3 < C1 < C2.  T1 is first inserted before T2; when
  // T3's aggregate is inserted, T1 must be removed and reinserted before
  // T3.  Final schedule: <T1, T3, T2>.
  const RuaScheduler rua(Sharing::kLockBased);
  std::vector<SchedJob> jobs;
  // heights: h1=20, h2=30, h3=5; remaining 10us each.
  // PUD: T2 = (20+30)/20 = 2.5, T1 = 20/10 = 2.0, T3 = (20+5)/20 = 1.25.
  jobs.push_back(job(1, 20.0, usec(80), usec(10)));
  jobs.push_back(job(2, 30.0, usec(100), usec(10), 1));
  jobs.push_back(job(3, 5.0, usec(50), usec(10), 1));
  const auto res = rua.build(jobs, 0);
  ASSERT_EQ(res.schedule.size(), 3u);
  EXPECT_EQ(res.schedule[0], 1);
  EXPECT_EQ(res.schedule[1], 3);
  EXPECT_EQ(res.schedule[2], 2);
  EXPECT_TRUE(res.rejected.empty());
  EXPECT_EQ(res.dispatch, 1);
}

TEST_F(SchedTest, InfeasibleTentativeKeepsPreviousSchedule) {
  // A feasible high-PUD job is committed; a later aggregate that breaks
  // feasibility is discarded without disturbing the committed schedule.
  const RuaScheduler rua(Sharing::kLockFree);
  std::vector<SchedJob> jobs;
  jobs.push_back(job(0, 100.0, usec(20), usec(15)));
  jobs.push_back(job(1, 10.0, usec(25), usec(15)));  // 15+15 > 25
  jobs.push_back(job(2, 1.0, usec(400), usec(10)));  // fits after 0
  const auto res = rua.build(jobs, 0);
  ASSERT_EQ(res.schedule.size(), 2u);
  EXPECT_EQ(res.schedule[0], 0);
  EXPECT_EQ(res.schedule[1], 2);
  ASSERT_EQ(res.rejected.size(), 1u);
  EXPECT_EQ(res.rejected[0], 1);
}

TEST_F(SchedTest, DispatchSkipsBlockedHead) {
  // If the holder is rejected (infeasible) but the blocked requester is
  // accepted, the dispatch must skip the blocked job.
  const RuaScheduler rua(Sharing::kLockBased);
  std::vector<SchedJob> jobs;
  // Holder: hopeless (remaining exceeds its critical time).
  jobs.push_back(job(1, 1.0, usec(10), usec(50)));
  // Requester blocked on 1; generous critical time, low utility makes
  // the aggregate with 1 infeasible but... the aggregate includes the
  // holder, so the requester is rejected too.  An independent ready job
  // must then be dispatched.
  jobs.push_back(job(2, 50.0, usec(1000), usec(10), 1));
  jobs.push_back(job(3, 5.0, usec(1000), usec(10)));
  const auto res = rua.build(jobs, 0);
  EXPECT_EQ(res.dispatch, 3);
}

TEST_F(SchedTest, DeadlockDetectionAbortsLeastDensity) {
  // Cycle 1 <-> 2 with job 2 the lower utility density: 2 is the victim;
  // 1 is then scheduled normally (its chain severed at the victim).
  const RuaScheduler rua(Sharing::kLockBased, /*detect_deadlocks=*/true);
  std::vector<SchedJob> jobs;
  jobs.push_back(job(1, 90.0, usec(100), usec(10), 2));
  jobs.push_back(job(2, 5.0, usec(100), usec(10), 1));
  const auto res = rua.build(jobs, 0);
  ASSERT_EQ(res.deadlock_victims.size(), 1u);
  EXPECT_EQ(res.deadlock_victims[0], 2);
  ASSERT_EQ(res.schedule.size(), 1u);
  EXPECT_EQ(res.schedule[0], 1);
}

TEST_F(SchedTest, DeadlockWithDetectionOffViolatesInvariant) {
  // The apples-to-apples configuration excludes nested sections, where
  // cycles cannot arise; feeding one anyway is a contract violation.
  const RuaScheduler rua(Sharing::kLockBased, /*detect_deadlocks=*/false);
  std::vector<SchedJob> jobs;
  jobs.push_back(job(1, 9.0, usec(100), usec(10), 2));
  jobs.push_back(job(2, 5.0, usec(100), usec(10), 1));
  EXPECT_THROW(rua.build(jobs, 0), InvariantViolation);
}

TEST_F(SchedTest, ThreeCycleVictimSeversChain) {
  const RuaScheduler rua(Sharing::kLockBased, true);
  std::vector<SchedJob> jobs;
  jobs.push_back(job(1, 90.0, usec(100), usec(10), 2));
  jobs.push_back(job(2, 50.0, usec(100), usec(10), 3));
  jobs.push_back(job(3, 1.0, usec(100), usec(10), 1));
  const auto res = rua.build(jobs, 0);
  ASSERT_EQ(res.deadlock_victims.size(), 1u);
  EXPECT_EQ(res.deadlock_victims[0], 3);
  // 1 waits on 2, 2's chain severed at the victim 3: order <2, 1>.
  ASSERT_EQ(res.schedule.size(), 2u);
  EXPECT_EQ(res.schedule[0], 2);
  EXPECT_EQ(res.schedule[1], 1);
}

TEST_F(SchedTest, LockFreeModeRejectsBlockedJobs) {
  const RuaScheduler rua(Sharing::kLockFree);
  std::vector<SchedJob> jobs;
  jobs.push_back(job(1, 9.0, usec(100), usec(10), 2));
  jobs.push_back(job(2, 5.0, usec(100), usec(10)));
  EXPECT_THROW(rua.build(jobs, 0), InvariantViolation);
}

TEST_F(SchedTest, DepartedHolderLeavesNoDependency) {
  // waits_on referencing a job no longer pending: no dependency to
  // respect in chain building (the simulator clears waits_on on release,
  // but the scheduler must tolerate a stale view).
  const RuaScheduler rua(Sharing::kLockBased);
  std::vector<SchedJob> jobs;
  jobs.push_back(job(1, 9.0, usec(100), usec(10), /*waits_on=*/777));
  jobs.push_back(job(2, 5.0, usec(200), usec(10)));
  const auto res = rua.build(jobs, 0);
  EXPECT_EQ(res.schedule.size(), 2u);
  // Job 1 is still not *runnable* (its waits_on is set), so dispatch
  // falls to job 2.
  EXPECT_EQ(res.dispatch, 2);
}

TEST_F(SchedTest, SharedDependentAcrossAggregates) {
  // Two requesters blocked on one holder: the holder must precede both,
  // and is inserted only once.
  const RuaScheduler rua(Sharing::kLockBased);
  std::vector<SchedJob> jobs;
  jobs.push_back(job(1, 50.0, usec(100), usec(5)));      // holder
  jobs.push_back(job(2, 40.0, usec(200), usec(5), 1));
  jobs.push_back(job(3, 30.0, usec(300), usec(5), 1));
  const auto res = rua.build(jobs, 0);
  ASSERT_EQ(res.schedule.size(), 3u);
  EXPECT_EQ(res.schedule[0], 1);
  const auto pos2 = std::find(res.schedule.begin(), res.schedule.end(), 2);
  const auto pos3 = std::find(res.schedule.begin(), res.schedule.end(), 3);
  ASSERT_NE(pos2, res.schedule.end());
  ASSERT_NE(pos3, res.schedule.end());
}

TEST_F(SchedTest, LockFreeCostsFewerOpsThanLockBasedWithChains) {
  // The cross-cutting claim of Section 3.6/5: dependencies make the
  // lock-based aggregates expensive; lock-free reduces every aggregate
  // to a single job.
  const RuaScheduler lb(Sharing::kLockBased);
  const RuaScheduler lf(Sharing::kLockFree);
  std::vector<SchedJob> chained, independent;
  const int n = 24;
  for (int i = 0; i < n; ++i) {
    chained.push_back(job(i, 10.0 + i, msec(10) + usec(i), usec(10),
                          i + 1 < n ? i + 1 : kNoJob));
    independent.push_back(job(i, 10.0 + i, msec(10) + usec(i), usec(10)));
  }
  const auto r_lb = lb.build(chained, 0);
  const auto r_lf = lf.build(independent, 0);
  EXPECT_GT(r_lb.ops, r_lf.ops);
}

TEST_F(SchedTest, OpsScaleRoughlyQuadraticallyLockFree) {
  const RuaScheduler lf(Sharing::kLockFree);
  auto make = [&](int n) {
    std::vector<SchedJob> jobs;
    for (int i = 0; i < n; ++i)
      jobs.push_back(job(i, 10.0, msec(100) + usec(i), usec(1)));
    return jobs;
  };
  const auto small = lf.build(make(16), 0);
  tufs_.clear();
  const auto big = lf.build(make(64), 0);
  const double ratio = static_cast<double>(big.ops) /
                       static_cast<double>(small.ops);
  // 4x jobs -> ~16x ops for an O(n^2) algorithm; allow generous slack
  // for lower-order terms.
  EXPECT_GT(ratio, 8.0);
}

TEST_F(SchedTest, EcfTieKeepsEarlierEntriesFirst) {
  // Regression for the ECF insertion point on equal keys: ecf_index
  // returns the first position whose effective critical time *exceeds*
  // the new key, so an entry inserted later with an equal key lands
  // after the ones already present.  With one shared critical time the
  // schedule must therefore come out in PUD order (insertion order),
  // not reversed.
  const RuaScheduler rua(Sharing::kLockFree);
  std::vector<SchedJob> jobs;
  jobs.push_back(job(0, 10.0, usec(100), usec(5)));  // PUD 2.0
  jobs.push_back(job(1, 40.0, usec(100), usec(5)));  // PUD 8.0
  jobs.push_back(job(2, 20.0, usec(100), usec(5)));  // PUD 4.0
  const auto res = rua.build(jobs, 0);
  ASSERT_EQ(res.schedule.size(), 3u);
  EXPECT_EQ(res.schedule[0], 1);
  EXPECT_EQ(res.schedule[1], 2);
  EXPECT_EQ(res.schedule[2], 0);
}

TEST_F(SchedTest, EcfTieBreaksFullTiesById) {
  // Jobs identical in PUD and critical time: the PUD sort's final
  // tie-break is the job id, and equal-key ECF insertion preserves that
  // order in the schedule.
  const RuaScheduler rua(Sharing::kLockFree);
  std::vector<SchedJob> jobs;
  jobs.push_back(job(5, 10.0, usec(100), usec(5)));
  jobs.push_back(job(3, 10.0, usec(100), usec(5)));
  jobs.push_back(job(9, 10.0, usec(100), usec(5)));
  const auto res = rua.build(jobs, 0);
  ASSERT_EQ(res.schedule.size(), 3u);
  EXPECT_EQ(res.schedule[0], 3);
  EXPECT_EQ(res.schedule[1], 5);
  EXPECT_EQ(res.schedule[2], 9);
}

TEST_F(SchedTest, EdfOrdersByCriticalAndSkipsBlocked) {
  const sched::EdfScheduler edf;
  std::vector<SchedJob> jobs;
  jobs.push_back(job(0, 1.0, usec(300), usec(10)));
  jobs.push_back(job(1, 1.0, usec(100), usec(10), /*waits_on=*/0));
  jobs.push_back(job(2, 1.0, usec(200), usec(10)));
  const auto res = edf.build(jobs, 0);
  ASSERT_EQ(res.schedule.size(), 3u);
  EXPECT_EQ(res.schedule[0], 1);  // earliest critical, though blocked
  EXPECT_EQ(res.schedule[1], 2);
  EXPECT_EQ(res.schedule[2], 0);
  EXPECT_EQ(res.dispatch, 2);  // first runnable
}

TEST_F(SchedTest, EdfNeverRejects) {
  const sched::EdfScheduler edf;
  std::vector<SchedJob> jobs;
  jobs.push_back(job(0, 1.0, usec(10), usec(50)));  // hopeless
  jobs.push_back(job(1, 1.0, usec(20), usec(50)));
  const auto res = edf.build(jobs, 0);
  EXPECT_EQ(res.schedule.size(), 2u);
  EXPECT_TRUE(res.rejected.empty());
}

/// Property: for arbitrary dependency forests, the lock-based schedule
/// always places every holder before every job that (transitively)
/// waits on it.
class DependencyOrderTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DependencyOrderTest, HoldersPrecedeWaiters) {
  Rng rng(GetParam());
  const RuaScheduler rua(Sharing::kLockBased);
  std::vector<std::unique_ptr<Tuf>> tufs;
  std::vector<SchedJob> jobs;
  const int n = 12;
  for (int i = 0; i < n; ++i) {
    tufs.push_back(make_step_tuf(1.0 + static_cast<double>(rng.uniform(1, 99)),
                                 msec(1) + usec(rng.uniform(0, 900))));
    SchedJob j;
    j.id = i;
    j.arrival = 0;
    j.critical = tufs.back()->critical_time();
    j.remaining = usec(rng.uniform(1, 30));
    j.tuf = tufs.back().get();
    // Forest structure: wait only on higher ids (no cycles).
    j.waits_on = (i + 1 < n && rng.chance(0.5)) ? rng.uniform(i + 1, n - 1)
                                                : kNoJob;
    jobs.push_back(j);
  }
  const auto res = rua.build(jobs, 0);

  auto pos = [&](JobId id) {
    const auto it = std::find(res.schedule.begin(), res.schedule.end(), id);
    return it == res.schedule.end()
               ? static_cast<std::ptrdiff_t>(-1)
               : it - res.schedule.begin();
  };
  for (const auto& j : jobs) {
    if (j.waits_on == kNoJob) continue;
    const auto pj = pos(j.id);
    const auto ph = pos(j.waits_on);
    if (pj >= 0) {
      // An accepted waiter requires its holder accepted and earlier.
      ASSERT_GE(ph, 0) << "waiter " << j.id << " accepted without holder";
      EXPECT_LT(ph, pj) << "holder " << j.waits_on << " after waiter "
                        << j.id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DependencyOrderTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u));

}  // namespace
}  // namespace lfrt
