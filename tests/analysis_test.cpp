// Unit tests for the executable theorems (analysis module), validated
// against hand-computed values.
#include "analysis/bounds.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "support/check.hpp"
#include "support/saturate.hpp"
#include "workload/workload.hpp"

namespace lfrt {
namespace {

/// Two-task fixture with round numbers:
///   T0: a=2, W=100us, C=100us, u=10us, m=2 accesses
///   T1: a=1, W=50us,  C=50us,  u=5us,  m=1 access
TaskSet two_task_set() {
  TaskSet ts;
  ts.object_count = 2;
  {
    TaskParams p;
    p.id = 0;
    p.arrival = UamSpec{1, 2, usec(100)};
    p.tuf = make_step_tuf(10.0, usec(100));
    p.exec_time = usec(10);
    p.accesses = {{0, usec(2)}, {1, usec(5)}};
    ts.tasks.push_back(std::move(p));
  }
  {
    TaskParams p;
    p.id = 1;
    p.arrival = UamSpec{1, 1, usec(50)};
    p.tuf = make_step_tuf(20.0, usec(50));
    p.exec_time = usec(5);
    p.accesses = {{0, usec(1)}};
    ts.tasks.push_back(std::move(p));
  }
  ts.validate();
  return ts;
}

TEST(InterferenceArrivals, HandComputed) {
  const TaskSet ts = two_task_set();
  // x_0 = a_1 (ceil(C_0/W_1) + 1) = 1 * (ceil(100/50) + 1) = 3.
  EXPECT_EQ(analysis::interference_arrivals(ts, 0), 3);
  // x_1 = a_0 (ceil(C_1/W_0) + 1) = 2 * (ceil(50/100) + 1) = 4.
  EXPECT_EQ(analysis::interference_arrivals(ts, 1), 4);
}

TEST(RetryBound, Theorem2HandComputed) {
  const TaskSet ts = two_task_set();
  // f_0 <= 3*2 + 2*3 = 12;  f_1 <= 3*1 + 2*4 = 11.
  EXPECT_EQ(analysis::retry_bound(ts, 0), 12);
  EXPECT_EQ(analysis::retry_bound(ts, 1), 11);
  EXPECT_EQ(analysis::max_scheduling_events(ts, 0), 12);
}

TEST(RetryBound, IndependentOfObjectCount) {
  // Theorem 2: f_i does not depend on how many objects the job touches.
  TaskSet ts = two_task_set();
  const auto before = analysis::retry_bound(ts, 0);
  ts.tasks[0].accesses.push_back({1, usec(7)});
  ts.tasks[0].accesses.push_back({0, usec(9)});
  EXPECT_EQ(analysis::retry_bound(ts, 0), before);
}

TEST(RetryBound, SingleTaskOnlySelfEvents) {
  TaskSet ts;
  ts.object_count = 1;
  TaskParams p;
  p.id = 0;
  p.arrival = UamSpec{1, 4, usec(100)};
  p.tuf = make_step_tuf(1.0, usec(100));
  p.exec_time = usec(10);
  ts.tasks.push_back(std::move(p));
  ts.validate();
  EXPECT_EQ(analysis::retry_bound(ts, 0), 12);  // 3 a_i, no other tasks
}

TEST(BlockingJobs, HandComputed) {
  const TaskSet ts = two_task_set();
  // n_0 <= 2 a_0 + x_0 = 4 + 3 = 7;  n_1 <= 2 + 4 = 6.
  EXPECT_EQ(analysis::max_blocking_jobs(ts, 0), 7);
  EXPECT_EQ(analysis::max_blocking_jobs(ts, 1), 6);
}

TEST(BlockingTime, UsesMinOfAccessesAndJobs) {
  const TaskSet ts = two_task_set();
  const Time r = usec(3);
  // B_0 = r * min(m_0=2, n_0=7) = 2r.
  EXPECT_EQ(analysis::worst_blocking_time(ts, 0, r), 2 * r);
  // B_1 = r * min(1, 6) = r.
  EXPECT_EQ(analysis::worst_blocking_time(ts, 1, r), r);
}

TEST(RetryTime, IsSTimesBound) {
  const TaskSet ts = two_task_set();
  EXPECT_EQ(analysis::worst_retry_time(ts, 0, usec(1)), usec(12));
}

TEST(Interference, HandComputed) {
  const TaskSet ts = two_task_set();
  const Time t_acc = usec(1);
  // I_0 <= a_1 (ceil(C_0/W_1)+1) * c_1 = 3 * (5 + 1*1) us = 18 us.
  EXPECT_EQ(analysis::worst_interference(ts, 0, t_acc), usec(18));
  // I_1 <= a_0 (ceil(C_1/W_0)+1) * c_0 = 4 * (10 + 2) us = 48 us.
  EXPECT_EQ(analysis::worst_interference(ts, 1, t_acc), usec(48));
}

TEST(Sojourn, WorstCaseFormulas) {
  const TaskSet ts = two_task_set();
  const Time r = usec(2), s = usec(1);
  // Lock-based T0: u + I(r) + r*m + B = 10 + 3*(5+2)= hmm computed below.
  const Time i_lb = analysis::worst_interference(ts, 0, r);
  EXPECT_EQ(analysis::worst_sojourn_lockbased(ts, 0, r),
            usec(10) + i_lb + r * 2 + analysis::worst_blocking_time(ts, 0, r));
  const Time i_lf = analysis::worst_interference(ts, 0, s);
  EXPECT_EQ(analysis::worst_sojourn_lockfree(ts, 0, s),
            usec(10) + i_lf + s * 2 + analysis::worst_retry_time(ts, 0, s));
}

TEST(Theorem3, ThresholdIsTwoThirdsWhenFewAccesses) {
  const TaskSet ts = two_task_set();
  // m_0 = 2 <= n_0 = 7 -> threshold 2/3.
  EXPECT_DOUBLE_EQ(analysis::lockfree_ratio_threshold(ts, 0), 2.0 / 3.0);
  EXPECT_TRUE(analysis::lockfree_wins(ts, 0, usec(1), usec(2)));
  EXPECT_FALSE(analysis::lockfree_wins(ts, 0, usec(2), usec(3)));
}

TEST(Theorem3, ManyAccessCaseUsesGeneralFormula) {
  TaskSet ts = two_task_set();
  // Blow up m_0 beyond n_0 = 7.
  auto& t0 = ts.tasks[0];
  t0.accesses.clear();
  for (int k = 0; k < 10; ++k)
    t0.accesses.push_back({static_cast<ObjectId>(k % 2), usec(k)});
  // m=10 > n=7: threshold = (m+n)/(m + 3a + 2x) = 17/(10+6+6) = 17/22.
  EXPECT_DOUBLE_EQ(analysis::lockfree_ratio_threshold(ts, 0), 17.0 / 22.0);
  // Theorem 3: the general threshold is always < 1 — lock-free never
  // wins the worst case unless s < r.
  EXPECT_LT(analysis::lockfree_ratio_threshold(ts, 0), 1.0);
}

TEST(Theorem3, RejectsNonPositiveAccessTimes) {
  const TaskSet ts = two_task_set();
  EXPECT_THROW(analysis::lockfree_wins(ts, 0, 0, usec(1)),
               InvariantViolation);
}

TEST(Lemma4, BandIsOrderedAndWithinUnit) {
  const TaskSet ts = two_task_set();
  const auto b = analysis::lockfree_aur_bounds(ts, usec(1));
  EXPECT_GE(b.lower, 0.0);
  EXPECT_LE(b.lower, b.upper);
  EXPECT_LE(b.upper, 1.0 + 1e-12);
}

TEST(Lemma4, UpperHitsOneForStepTufsWithSlack) {
  // With step TUFs and best-case sojourns far below C, the upper bound
  // is exactly 1 (every job accrues full utility).
  const TaskSet ts = two_task_set();
  const auto b = analysis::lockfree_aur_bounds(ts, usec(1));
  EXPECT_DOUBLE_EQ(b.upper, 1.0);
}

TEST(Lemma5, LockBasedBandOrdered) {
  const TaskSet ts = two_task_set();
  const auto b = analysis::lockbased_aur_bounds(ts, usec(5));
  EXPECT_GE(b.lower, 0.0);
  EXPECT_LE(b.lower, b.upper);
  EXPECT_LE(b.upper, 1.0 + 1e-12);
}

TEST(Lemma45, RejectIncreasingTufs) {
  TaskSet ts = two_task_set();
  ts.tasks[0].tuf = make_ramp_tuf(10.0, usec(100));
  EXPECT_THROW(analysis::lockfree_aur_bounds(ts, usec(1)),
               InvariantViolation);
}

TEST(AsymptoticCost, LockFreeBeatsLockBasedBeyondTrivialN) {
  for (std::int64_t n : {4, 16, 64, 256})
    EXPECT_LT(analysis::rua_lockfree_asymptotic(n),
              analysis::rua_lockbased_asymptotic(n));
  // And the gap grows as log n.
  const double g16 = analysis::rua_lockbased_asymptotic(16) /
                     analysis::rua_lockfree_asymptotic(16);
  const double g256 = analysis::rua_lockbased_asymptotic(256) /
                      analysis::rua_lockfree_asymptotic(256);
  EXPECT_DOUBLE_EQ(g16, 4.0);
  EXPECT_DOUBLE_EQ(g256, 8.0);
}

TEST(Saturation, NearMaxHorizonsClampNotWrap) {
  // A critical time near INT64_MAX against a 1-tick window used to
  // overflow ceil(C_i/W_j) * a_j and wrap the "bounds" negative; the
  // saturating arithmetic must clamp them to the rail instead.
  TaskSet ts;
  ts.object_count = 1;
  {
    TaskParams p;
    p.id = 0;
    p.arrival = UamSpec{1, 1, std::numeric_limits<Time>::max()};
    p.tuf = make_step_tuf(1.0, std::numeric_limits<Time>::max());
    p.exec_time = 1;
    p.accesses = {{0, 0}};
    ts.tasks.push_back(std::move(p));
  }
  {
    TaskParams p;
    p.id = 1;
    p.arrival = UamSpec{1, 1, 1};
    p.tuf = make_step_tuf(1.0, 1);
    p.exec_time = 1;
    p.accesses = {{0, 0}};
    ts.tasks.push_back(std::move(p));
  }
  ts.validate();
  EXPECT_EQ(analysis::interference_arrivals(ts, 0), support::kSaturated);
  EXPECT_EQ(analysis::retry_bound(ts, 0), support::kSaturated);
  EXPECT_EQ(analysis::max_blocking_jobs(ts, 0), support::kSaturated);
  EXPECT_GE(analysis::worst_retry_time(ts, 0, usec(1)), 0);
  EXPECT_EQ(analysis::worst_retry_time(ts, 0, usec(1)), support::kSaturated);
  EXPECT_GE(analysis::worst_interference(ts, 1, usec(1)), 0);
  EXPECT_EQ(analysis::worst_sojourn_lockfree(ts, 0, usec(1)),
            support::kSaturated);
  // The small-horizon task still gets finite numbers.
  EXPECT_EQ(analysis::interference_arrivals(ts, 1), 2);
}

/// Property sweep over generated workloads: structural relations between
/// the bounds hold for arbitrary parameters.
class BoundRelationTest
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {
};

TEST_P(BoundRelationTest, StructuralInequalities) {
  const auto [tasks, accesses, seed] = GetParam();
  workload::WorkloadSpec spec;
  spec.task_count = tasks;
  spec.accesses_per_job = accesses;
  spec.seed = seed;
  spec.max_per_window = 1 + static_cast<std::int32_t>(seed % 3);
  const TaskSet ts = workload::make_task_set(spec);

  for (const auto& t : ts.tasks) {
    // Retry bound = 3a + 2x and n-bound = 2a + x: f >= n always.
    EXPECT_GE(analysis::retry_bound(ts, t.id),
              analysis::max_blocking_jobs(ts, t.id));
    // Thresholds are in (0, 1).
    const double th = analysis::lockfree_ratio_threshold(ts, t.id);
    EXPECT_GT(th, 0.0);
    EXPECT_LE(th, 1.0);
    // Worst sojourns dominate the no-interference path.
    EXPECT_GE(analysis::worst_sojourn_lockfree(ts, t.id, usec(1)),
              t.exec_time + usec(1) * t.access_count());
    // AUR bands are ordered.
    const auto lf = analysis::lockfree_aur_bounds(ts, usec(1));
    EXPECT_LE(lf.lower, lf.upper);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BoundRelationTest,
    ::testing::Combine(::testing::Values(2, 5, 10),
                       ::testing::Values(0, 1, 4),
                       ::testing::Values(3u, 17u, 2026u)));

}  // namespace
}  // namespace lfrt
