// Shared-object access-time microbenchmarks (Figure 8).
//
// The paper measures, on its RTOS testbed, the time r to access a
// lock-based object and the time s to access a lock-free object, as the
// number of shared objects accessed by jobs grows.  Two effects make
// r >> s there: (1) each lock/unlock request invokes lock-based RUA's
// resource-management machinery (dependency chains, feasibility tests),
// and (2) the meta-scheduler adds per-request overhead.  We reproduce
// the same decomposition:
//
//   s  =  one CAS-based Michael&Scott queue operation
//   r  =  one mutex-protected queue operation
//         + one lock-based RUA invocation over a 10-job view whose
//           dependency chains span the shared objects
//
// Both are measured on real threads with std::atomic; an optional
// interferer thread induces the preemption interleavings of a loaded
// uniprocessor.
#pragma once

#include <cstdint>

#include "support/stats.hpp"
#include "support/time.hpp"

namespace lfrt::rt {

struct AccessTimeResult {
  RunningStats per_access_ns;    ///< r or s samples, in nanoseconds
  std::int64_t retries = 0;      ///< CAS retries observed (lock-free)
  std::int64_t contended = 0;    ///< contended acquires (lock-based)
};

struct AccessTimeConfig {
  std::int32_t object_count = 10;  ///< objects the job set shares
  std::int32_t task_count = 10;    ///< jobs in the RUA view (paper: 10)
  std::int64_t samples = 2000;     ///< paper: ~2000 samples per point
  bool with_interferer = true;     ///< background thread touching objects
  std::uint64_t seed = 1;
};

/// Measure s: per-operation time of lock-free queue accesses.
AccessTimeResult measure_lockfree_access(const AccessTimeConfig& cfg);

/// Measure r: per-operation time of lock-based queue accesses including
/// the lock-based RUA resource-management invocation each lock request
/// triggers.
AccessTimeResult measure_lockbased_access(const AccessTimeConfig& cfg);

}  // namespace lfrt::rt
