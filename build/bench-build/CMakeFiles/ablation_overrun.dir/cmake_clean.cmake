file(REMOVE_RECURSE
  "../bench/ablation_overrun"
  "../bench/ablation_overrun.pdb"
  "CMakeFiles/ablation_overrun.dir/ablation_overrun.cpp.o"
  "CMakeFiles/ablation_overrun.dir/ablation_overrun.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_overrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
