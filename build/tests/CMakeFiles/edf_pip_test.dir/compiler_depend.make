# Empty compiler generated dependencies file for edf_pip_test.
# This may be replaced when dependencies are built.
