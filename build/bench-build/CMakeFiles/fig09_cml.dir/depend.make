# Empty dependencies file for fig09_cml.
# This may be replaced when dependencies are built.
