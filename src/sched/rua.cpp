// Allocation-free RUA hot path.  Semantics and modelled `ops` are
// bit-for-bit identical to the naive reference (rua_reference.cpp);
// tests/rua_equivalence_test.cpp holds the two implementations equal on
// randomized workloads.  The differences are purely mechanical:
//
//   * all scratch lives in a RuaWorkspace and retains capacity,
//   * the JobId -> index map is open-addressed instead of node-based,
//   * dependency chains are stored in one flat CSR buffer,
//   * the tentative schedule is the committed schedule edited in place,
//     with an undo log replayed backwards on infeasibility (replacing
//     the full per-aggregate copy),
//   * entry lookups read a maintained position index (replacing the
//     linear find_entry scan), and
//   * the feasibility pass resumes from a prefix-sum watermark at the
//     first position the aggregate touched (entries before it belong to
//     a previously committed — hence feasible — prefix).
#include "sched/rua.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/check.hpp"

namespace lfrt::sched {
namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// Modelled cost of one lookup/insert/remove on an ordered list of
/// length `len` (paper, Section 3.6, step 5: "each of which costs
/// O(log n)").
std::int64_t ordered_op_cost(std::size_t len) {
  std::int64_t c = 1;
  while (len > 1) {
    ++c;
    len >>= 1;
  }
  return c;
}

/// First position whose effective critical time exceeds `eff` — the ECF
/// insertion point (stable: equal keys keep earlier entries first).
std::size_t ecf_index(const std::vector<RuaEntry>& sched, Time eff) {
  std::size_t lo = 0, hi = sched.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (sched[mid].eff_critical <= eff)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

std::uint64_t hash_id(JobId id) {
  auto z = static_cast<std::uint64_t>(id) + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

RuaScheduler::RuaScheduler(Sharing sharing, bool detect_deadlocks)
    : sharing_(sharing), detect_deadlocks_(detect_deadlocks) {}

std::string RuaScheduler::name() const {
  return sharing_ == Sharing::kLockFree ? "RUA/lock-free" : "RUA/lock-based";
}

std::unique_ptr<Scheduler::Workspace> RuaScheduler::make_workspace() const {
  return std::make_unique<RuaWorkspace>();
}

void RuaScheduler::build_into(const std::vector<SchedJob>& jobs, Time now,
                              Workspace* ws, ScheduleResult& out) const {
  if (ws == nullptr) {
    RuaWorkspace transient;
    run(jobs, now, transient, out);
    return;
  }
  auto* rws = dynamic_cast<RuaWorkspace*>(ws);
  LFRT_CHECK_MSG(rws != nullptr,
                 "RuaScheduler::build_into given a foreign workspace");
  run(jobs, now, *rws, out);
}

void RuaScheduler::run(const std::vector<SchedJob>& jobs, Time now,
                       RuaWorkspace& ws, ScheduleResult& out) const {
  out.clear();
  const std::size_t n = jobs.size();
  if (n == 0) return;

  // ---- id -> index map (open-addressed; first insertion wins, like
  // unordered_map::emplace) ---------------------------------------------
  std::size_t cap = 8;
  while (cap < 2 * n) cap <<= 1;
  const std::size_t mask = cap - 1;
  ws.map_keys.assign(cap, kNoJob);
  ws.map_vals.resize(cap);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t slot = static_cast<std::size_t>(hash_id(jobs[i].id)) & mask;
    while (ws.map_keys[slot] != kNoJob && ws.map_keys[slot] != jobs[i].id)
      slot = (slot + 1) & mask;
    if (ws.map_keys[slot] == kNoJob) {
      ws.map_keys[slot] = jobs[i].id;
      ws.map_vals[slot] = i;
    }
  }
  out.ops += static_cast<std::int64_t>(n);

  auto lookup = [&](JobId id) -> std::size_t {
    std::size_t slot = static_cast<std::size_t>(hash_id(id)) & mask;
    while (ws.map_keys[slot] != kNoJob) {
      if (ws.map_keys[slot] == id) return ws.map_vals[slot];
      slot = (slot + 1) & mask;
    }
    return kNpos;
  };

  /// Index of the job `from` waits on (kNpos if unblocked or the holder
  /// already departed).
  auto follow = [&](std::size_t from) -> std::size_t {
    const JobId w = jobs[from].waits_on;
    if (w == kNoJob) return kNpos;
    return lookup(w);
  };

  // ---- Step 1: dependency chains (lock-based only) -------------------
  //
  // Chain i runs from the job itself (tail) toward the deepest
  // dependency (head); under the single-unit resource model each job
  // waits on at most one holder, so the chain is a simple path unless a
  // cycle (deadlock) exists.  Lock-free chains are the singleton {i}
  // and are not materialized.
  ws.dead.assign(n, 0);

  if (sharing_ == Sharing::kLockFree) {
    for (std::size_t i = 0; i < n; ++i)
      LFRT_CHECK_MSG(jobs[i].waits_on == kNoJob,
                     "lock-free RUA saw a blocked job");
  } else {
    // ---- Step 3 pre-pass: cycle detection & resolution ---------------
    if (detect_deadlocks_) {
      ws.visited.assign(n, 0);
      ws.on_path.assign(n, 0);
      for (std::size_t i = 0; i < n; ++i) {
        if (ws.visited[i]) continue;
        ws.path.clear();
        std::size_t cur = i;
        while (cur != kNpos && !ws.visited[cur] && !ws.on_path[cur]) {
          ws.on_path[cur] = 1;
          ws.path.push_back(cur);
          cur = follow(cur);
          out.ops += 1;
        }
        if (cur != kNpos && ws.on_path[cur]) {
          // Found a cycle starting at `cur`: abort the member that
          // would contribute the least utility per remaining time.
          std::size_t victim = kNpos;
          double worst = std::numeric_limits<double>::infinity();
          for (auto it = std::find(ws.path.begin(), ws.path.end(), cur);
               it != ws.path.end(); ++it) {
            const auto& j = jobs[*it];
            const double density =
                j.remaining > 0
                    ? j.tuf->utility(now + j.remaining - j.arrival) /
                          static_cast<double>(j.remaining)
                    : std::numeric_limits<double>::infinity();
            if (density < worst) {
              worst = density;
              victim = *it;
            }
            out.ops += 1;
          }
          ws.dead[victim] = 1;
          out.deadlock_victims.push_back(jobs[victim].id);
        }
        for (std::size_t p : ws.path) {
          ws.visited[p] = 1;
          ws.on_path[p] = 0;  // the reference's fresh per-walk vector
        }
      }
    }

    ws.chain_off.assign(n, 0);
    ws.chain_len.assign(n, 0);
    ws.chain_data.clear();
    // Stamp array replacing the reference's std::find over the growing
    // chain (O(len) per follow step): chain_mark[k] == i + 1 iff k is
    // already a member of chain i.  No modelled ops are charged for the
    // membership check, so the counts stay identical.
    ws.chain_mark.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (ws.dead[i]) continue;
      const std::size_t off = ws.chain_data.size();
      ws.chain_off[i] = off;
      ws.chain_data.push_back(i);
      ws.chain_mark[i] = i + 1;
      std::size_t cur = i;
      for (;;) {
        const std::size_t next = follow(cur);
        out.ops += 1;
        if (next == kNpos) break;
        // A victim releases its objects on abort: sever the chain there.
        if (ws.dead[next]) break;
        if (ws.chain_mark[next] == i + 1) {
          LFRT_CHECK_MSG(detect_deadlocks_,
                         "dependency cycle with deadlock detection off — "
                         "nested critical sections are excluded from this "
                         "configuration");
          break;  // unreachable: victims sever every cycle
        }
        ws.chain_data.push_back(next);
        ws.chain_mark[next] = i + 1;
        cur = next;
      }
      ws.chain_len[i] = ws.chain_data.size() - off;
    }
  }

  /// Chain of job i as a [first, last) range (singleton {i} lock-free).
  const bool lock_free = sharing_ == Sharing::kLockFree;
  std::size_t self_holder = 0;  // backing store for lock-free singletons
  auto chain_of = [&](std::size_t i)
      -> std::pair<const std::size_t*, const std::size_t*> {
    if (lock_free) {
      self_holder = i;
      return {&self_holder, &self_holder + 1};
    }
    const std::size_t* first = ws.chain_data.data() + ws.chain_off[i];
    return {first, first + ws.chain_len[i]};
  };

  // ---- Step 2: potential utility densities ---------------------------
  //
  // PUD_i = (U_i(t_f) + sum_dep U_j(t_j)) / (t_f - now): the aggregate's
  // "return on investment", with completion estimates accumulated
  // deepest-dependency-first.
  ws.pud.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (ws.dead[i]) continue;
    Time cum = 0;
    double util = 0.0;
    const auto [first, last] = chain_of(i);
    for (const std::size_t* it = last; it != first;) {
      const auto& j = jobs[*--it];
      cum += j.remaining;
      util += j.tuf->utility(now + cum - j.arrival);
      out.ops += 1;
    }
    ws.pud[i] = cum > 0 ? util / static_cast<double>(cum)
                        : std::numeric_limits<double>::infinity();
  }

  // ---- Step 4: sort by non-increasing PUD ----------------------------
  ws.order.clear();
  for (std::size_t i = 0; i < n; ++i)
    if (!ws.dead[i]) ws.order.push_back(i);
  std::sort(ws.order.begin(), ws.order.end(),
            [&](std::size_t a, std::size_t b) {
              if (ws.pud[a] != ws.pud[b]) return ws.pud[a] > ws.pud[b];
              if (jobs[a].critical != jobs[b].critical)
                return jobs[a].critical < jobs[b].critical;
              return jobs[a].id < jobs[b].id;
            });
  out.ops += static_cast<std::int64_t>(ws.order.size()) *
             ordered_op_cost(ws.order.size());

  // ---- Step 5: greedy aggregate insertion with feasibility tests -----
  //
  // The committed schedule is edited in place; each aggregate's edits
  // are logged and rolled back (LIFO) if the result is infeasible.
  // pos_of[k] != kNpos doubles as the reference's in_schedule flag: the
  // log restores it exactly on rollback.
  auto& schedule = ws.schedule;
  schedule.clear();
  ws.pos_of.assign(n, kNpos);
  ws.prefix.resize(n);
  std::size_t watermark = 0;  // prefix[p] valid for p < watermark

  /// Insert `e` at `idx`, shifting the tail and keeping pos_of current.
  auto insert_at = [&](std::size_t idx, const RuaEntry& e) {
    schedule.insert(schedule.begin() + static_cast<std::ptrdiff_t>(idx),
                    e);
    for (std::size_t p = idx; p < schedule.size(); ++p)
      ws.pos_of[schedule[p].job] = p;
  };

  /// Remove the entry at `pos`, shifting the tail and keeping pos_of
  /// current (the removed job's position becomes kNpos).
  auto erase_at = [&](std::size_t pos) {
    ws.pos_of[schedule[pos].job] = kNpos;
    schedule.erase(schedule.begin() + static_cast<std::ptrdiff_t>(pos));
    for (std::size_t p = pos; p < schedule.size(); ++p)
      ws.pos_of[schedule[p].job] = p;
  };

  /// Move the entry at `pos` down to `idx` (idx <= pos), replacing it
  /// with `e` (its clamped form).  Only positions in [idx, pos] shift,
  /// so the memmove and the pos_of fixup both stay local to that range
  /// — a move must NOT be expressed as erase_at + insert_at, whose
  /// fixups each run to the end of the schedule.
  auto move_down = [&](std::size_t pos, std::size_t idx,
                       const RuaEntry& e) {
    // copy_backward lowers to one memmove (std::rotate would walk the
    // range element by element).
    std::copy_backward(schedule.begin() + static_cast<std::ptrdiff_t>(idx),
                       schedule.begin() + static_cast<std::ptrdiff_t>(pos),
                       schedule.begin() + static_cast<std::ptrdiff_t>(pos) +
                           1);
    schedule[idx] = e;
    for (std::size_t p = idx; p <= pos; ++p)
      ws.pos_of[schedule[p].job] = p;
  };

  /// ecf_index over the schedule as it would look with position `pos`
  /// erased: the same binary search the reference runs after its
  /// tentative.erase(), probe for probe, without performing the erase.
  auto ecf_index_skipping = [&](Time eff, std::size_t pos) {
    std::size_t lo = 0, hi = schedule.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      const RuaEntry& m = schedule[mid < pos ? mid : mid + 1];
      if (m.eff_critical <= eff)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  };

  for (std::size_t i : ws.order) {
    if (ws.pos_of[i] != kNpos) continue;  // inserted as a dependent

    // The reference copies the whole tentative schedule here; the copy
    // is part of the modelled cost even though no copy happens anymore.
    out.ops += static_cast<std::int64_t>(schedule.size());

    ws.undo.clear();
    std::size_t first_changed = schedule.size();

    // Insert the chain from tail (the job) toward head (deepest
    // dependency).  `dep_pos`/`dep_eff` track the previously inserted
    // chain member, which the current one must precede.
    std::size_t dep_pos = kNpos;
    Time dep_eff = kTimeNever;

    const auto [first, last] = chain_of(i);
    for (const std::size_t* it = first; it != last; ++it) {
      const std::size_t k = *it;
      const std::size_t pos = ws.pos_of[k];
      out.ops += ordered_op_cost(schedule.size());  // modelled lookup

      if (pos != kNpos) {
        if (dep_pos != kNpos && pos > dep_pos) {
          // Figure 5, Case 2: the already-present dependent sits after
          // the job that must follow it — remove, clamp, reinsert.
          const RuaEntry saved = schedule[pos];
          RuaEntry e = saved;
          e.eff_critical = std::min(e.eff_critical, dep_eff);
          const std::size_t idx = std::min(
              ecf_index_skipping(e.eff_critical, pos), dep_pos);
          move_down(pos, idx, e);
          out.ops += 2 * ordered_op_cost(schedule.size());
          ws.undo.push_back({RuaWorkspace::Undo::Kind::kMove, pos, idx,
                             saved});
          first_changed = std::min(first_changed, idx);  // idx <= pos
          dep_pos = idx;
          dep_eff = e.eff_critical;
        } else {
          dep_pos = pos;
          dep_eff = schedule[pos].eff_critical;
        }
      } else {
        // Figure 4: clamp the dependent's critical time so the ECF order
        // stays consistent with the dependency order.
        const RuaEntry e{k, std::min(jobs[k].critical, dep_eff)};
        std::size_t idx = ecf_index(schedule, e.eff_critical);
        if (dep_pos != kNpos) idx = std::min(idx, dep_pos);
        insert_at(idx, e);
        out.ops += ordered_op_cost(schedule.size());
        ws.undo.push_back({RuaWorkspace::Undo::Kind::kInsert, idx, 0,
                           RuaEntry{}});
        first_changed = std::min(first_changed, idx);
        dep_pos = idx;
        dep_eff = e.eff_critical;
      }
    }

    // Feasibility: every entry must finish by its effective critical
    // time when the tentative schedule is executed in order from `now`.
    // Positions below min(first_changed, watermark) belong to a
    // previously committed prefix: unchanged, already feasible, and
    // with valid prefix sums — so the scan resumes there.  The modelled
    // cost still charges the reference's full head-to-violation walk.
    const std::size_t len = schedule.size();
    const std::size_t start = std::min(first_changed, watermark);
    Time finish = start > 0 ? ws.prefix[start - 1] : now;
    std::size_t violation = kNpos;
    for (std::size_t p = start; p < len; ++p) {
      finish += jobs[schedule[p].job].remaining;
      ws.prefix[p] = finish;
      if (finish > schedule[p].eff_critical) {
        violation = p;
        break;
      }
    }

    if (violation == kNpos) {
      out.ops += static_cast<std::int64_t>(len);
      watermark = len;  // commit: prefix now valid end-to-end
    } else {
      out.ops += static_cast<std::int64_t>(violation) + 1;
      // Roll the aggregate's edits back in LIFO order; each undo step
      // sees the schedule exactly as it was right after its edit.
      for (auto u = ws.undo.rbegin(); u != ws.undo.rend(); ++u) {
        if (u->kind == RuaWorkspace::Undo::Kind::kInsert) {
          erase_at(u->a);
        } else {
          // The entry moved down from a to b; shift it back up and
          // restore its pre-clamp form.  Fixup is again local to
          // [b, a].
          std::copy(schedule.begin() + static_cast<std::ptrdiff_t>(u->b) + 1,
                    schedule.begin() + static_cast<std::ptrdiff_t>(u->a) + 1,
                    schedule.begin() + static_cast<std::ptrdiff_t>(u->b));
          schedule[u->a] = u->saved;
          for (std::size_t p = u->b; p <= u->a; ++p)
            ws.pos_of[schedule[p].job] = p;
        }
      }
      watermark = std::min(watermark, start);  // prefix beyond: stale
      out.rejected.push_back(jobs[i].id);
    }
  }

  out.schedule.reserve(schedule.size());
  for (const RuaEntry& e : schedule) out.schedule.push_back(jobs[e.job].id);

  for (const RuaEntry& e : schedule) {
    if (jobs[e.job].runnable()) {
      out.dispatch = jobs[e.job].id;
      break;
    }
  }
}

}  // namespace lfrt::sched
