# Empty compiler generated dependencies file for calibrate_overhead.
# This may be replaced when dependencies are built.
