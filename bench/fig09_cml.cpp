// Figure 9: Critical time-Miss Load (CML) of ideal, lock-free, and
// lock-based RUA under increasing average job execution time.
//
// CML is the approximate load AL = sum u_i / C_i (object-access time
// excluded) after which the scheduler begins to miss critical times.
// Shorter jobs expose the fixed scheduler overhead, so CML < 1 at small
// execution times; lock-free RUA should track the ideal curve closely
// while lock-based RUA — with its costlier invocations, extra lock/
// unlock scheduling events, and blocking — only approaches CML 1 at
// execution times orders of magnitude larger (paper: ~1 ms vs ~10 us).
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace lfrt;
  bench::init(argc, argv);
  bench::print_header("Figure 9", "CML vs average job execution time");
  const Time r = usec(25), s = bench::kDefaultS;
  std::cout << "tasks=10  objects=10  accesses/job=2  r=" << to_usec(r)
            << "us  s=" << to_usec(s) << "us  ns/op="
            << bench::kDefaultNsPerOp << "  seed=42\n\n";

  Table table({"avg exec (us)", "CML ideal", "CML lock-free",
               "CML lock-based"});

  for (const Time exec :
       {usec(10), usec(30), usec(100), usec(300), usec(1000)}) {
    auto make_spec = [&](double al) {
      workload::WorkloadSpec spec;
      spec.task_count = 10;
      spec.object_count = 10;
      spec.accesses_per_job = 2;
      spec.avg_exec = exec;
      spec.load = al;
      spec.tuf_class = workload::TufClass::kStep;
      spec.seed = 42;
      return spec;
    };

    bench::RunParams rp;
    rp.r = r;
    rp.s = s;
    rp.repeats = 3;
    rp.windows_per_run = 100;

    rp.mode = sim::ShareMode::kIdeal;
    const double cml_ideal = bench::measure_cml(make_spec, rp);
    rp.mode = sim::ShareMode::kLockFree;
    const double cml_lf = bench::measure_cml(make_spec, rp);
    rp.mode = sim::ShareMode::kLockBased;
    const double cml_lb = bench::measure_cml(make_spec, rp);

    table.add_row({std::to_string(exec / 1000), Table::num(cml_ideal, 2),
                   Table::num(cml_lf, 2), Table::num(cml_lb, 2)});
  }
  table.print();
  std::cout << "\ncsv:\n";
  table.print_csv();
  return 0;
}
