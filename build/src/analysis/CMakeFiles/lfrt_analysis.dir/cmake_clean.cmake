file(REMOVE_RECURSE
  "CMakeFiles/lfrt_analysis.dir/bounds.cpp.o"
  "CMakeFiles/lfrt_analysis.dir/bounds.cpp.o.d"
  "liblfrt_analysis.a"
  "liblfrt_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfrt_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
