file(REMOVE_RECURSE
  "CMakeFiles/airborne_tracker.dir/airborne_tracker.cpp.o"
  "CMakeFiles/airborne_tracker.dir/airborne_tracker.cpp.o.d"
  "airborne_tracker"
  "airborne_tracker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airborne_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
