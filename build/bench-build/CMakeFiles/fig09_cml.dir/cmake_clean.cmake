file(REMOVE_RECURSE
  "../bench/fig09_cml"
  "../bench/fig09_cml.pdb"
  "CMakeFiles/fig09_cml.dir/fig09_cml.cpp.o"
  "CMakeFiles/fig09_cml.dir/fig09_cml.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_cml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
