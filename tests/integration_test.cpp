// Cross-module integration and failure-injection tests: long runs with
// nonzero abort handlers under overload, horizon boundaries, analysis-
// vs-simulator consistency sweeps, and end-to-end reproduction smoke
// checks of the headline figure shapes.
#include <gtest/gtest.h>

#include "analysis/bounds.hpp"
#include "sched/edf.hpp"
#include "sched/rua.hpp"
#include "sim/simulator.hpp"
#include "workload/workload.hpp"

namespace lfrt {
namespace {

using sim::ShareMode;
using sim::SimConfig;
using sim::Simulator;

sim::SimReport run(const TaskSet& ts, ShareMode mode, Time horizon,
                   std::uint64_t seed, Time r = usec(40),
                   Time s = usec(1), double ns_per_op = 5.0,
                   bool detect = false) {
  const sched::RuaScheduler rua(mode == ShareMode::kLockBased
                                    ? sched::Sharing::kLockBased
                                    : sched::Sharing::kLockFree,
                                detect);
  SimConfig cfg;
  cfg.mode = mode;
  cfg.lock_access_time = r;
  cfg.lockfree_access_time = s;
  cfg.sched_ns_per_op = ns_per_op;
  cfg.horizon = horizon;
  Simulator sim(ts, rua, cfg);
  sim.seed_arrivals(seed);
  return sim.run();
}

TEST(Integration, OverloadWithCostlyAbortHandlers) {
  // Failure injection: handlers consume real CPU time, so each abort
  // steals capacity from survivors; the system must stay consistent
  // (every counted job terminal, locks never leak).
  workload::WorkloadSpec spec;
  spec.task_count = 8;
  spec.object_count = 4;
  spec.accesses_per_job = 2;
  spec.load = 1.6;  // deep overload -> many aborts
  spec.abort_handler_time = usec(50);
  spec.seed = 19;
  const TaskSet ts = workload::make_task_set(spec);

  for (const auto mode : {ShareMode::kLockFree, ShareMode::kLockBased}) {
    const auto rep = run(ts, mode, msec(40), 3);
    EXPECT_GT(rep.aborted, 0) << sim::to_string(mode);
    EXPECT_EQ(rep.completed + rep.aborted, rep.counted_jobs);
    // Handler execution is visible as sojourns: an aborted job's
    // lifetime ends strictly after its critical time (handler runs
    // past it), never before.
    for (const Job& j : rep.jobs) {
      if (j.state == JobState::kAborted) {
        EXPECT_EQ(j.completion, -1);
        EXPECT_EQ(j.held_object, kNoObject);
        EXPECT_TRUE(j.held_stack.empty());
      }
    }
  }
}

TEST(Integration, HandlerCostDegradesAurMonotonically) {
  // The longer the abort handlers, the less utility survives.
  double prev_aur = 1.1;
  for (const Time handler : {usec(0), usec(100), usec(400)}) {
    workload::WorkloadSpec spec;
    spec.task_count = 8;
    spec.object_count = 4;
    spec.accesses_per_job = 2;
    spec.load = 1.5;
    spec.abort_handler_time = handler;
    spec.seed = 4;
    const TaskSet ts = workload::make_task_set(spec);
    const auto rep = run(ts, ShareMode::kLockFree, msec(40), 9);
    EXPECT_LT(rep.aur(), prev_aur + 1e-9)
        << "handler " << to_usec(handler) << "us";
    prev_aur = rep.aur();
  }
}

TEST(Integration, WorstCaseSojournBoundsHoldWithoutOverhead) {
  // Section 5's sojourn decomposition is a worst case: with overhead
  // charging off, every *completed* job's sojourn must stay below the
  // analytic worst-case for its sharing mode.
  workload::WorkloadSpec spec;
  spec.task_count = 5;
  spec.object_count = 3;
  spec.accesses_per_job = 2;
  spec.load = 0.7;
  spec.seed = 23;
  const TaskSet ts = workload::make_task_set(spec);
  const Time r = usec(20), s = usec(2);

  const auto lf = run(ts, ShareMode::kLockFree, msec(60), 5, r, s, 0.0);
  for (const Job& j : lf.jobs) {
    if (j.state != JobState::kCompleted) continue;
    EXPECT_LE(j.sojourn(), analysis::worst_sojourn_lockfree(ts, j.task, s))
        << "task " << j.task;
  }
  const auto lb = run(ts, ShareMode::kLockBased, msec(60), 5, r, s, 0.0);
  for (const Job& j : lb.jobs) {
    if (j.state != JobState::kCompleted) continue;
    EXPECT_LE(j.sojourn(),
              analysis::worst_sojourn_lockbased(ts, j.task, r))
        << "task " << j.task;
  }
}

TEST(Integration, HorizonBoundaryCountsOnlyDecidableJobs) {
  // Jobs whose critical time falls beyond the horizon are excluded from
  // the metrics; everything counted is terminal.
  TaskSet ts;
  ts.object_count = 0;
  TaskParams p;
  p.id = 0;
  p.arrival = UamSpec{1, 1, usec(100)};
  p.tuf = make_step_tuf(10.0, usec(100));
  p.exec_time = usec(10);
  ts.tasks.push_back(std::move(p));
  ts.validate();

  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kIdeal;
  cfg.horizon = usec(250);
  Simulator sim(ts, edf, cfg);
  // Arrivals at 0, 100, 200: the third's critical time (300) is past
  // the horizon -> only two are counted.
  sim.set_arrivals(0, {0, usec(100), usec(200)});
  const auto rep = sim.run();
  EXPECT_EQ(rep.counted_jobs, 2);
  EXPECT_EQ(rep.completed, 2);
  EXPECT_EQ(rep.jobs.size(), 3u);
}

TEST(Integration, LongRunStability) {
  // 2000+ windows: counters stay sane, no invariant trips, AUR within
  // the Lemma-4 band (feasible regime, non-increasing TUFs).
  workload::WorkloadSpec spec;
  spec.task_count = 4;
  spec.object_count = 2;
  spec.accesses_per_job = 1;
  spec.avg_exec = usec(100);
  spec.load = 0.3;
  spec.seed = 6;
  const TaskSet ts = workload::make_task_set(spec);
  Time max_window = 0;
  for (const auto& t : ts.tasks)
    max_window = std::max(max_window, t.arrival.window);

  const Time s = usec(1);
  const auto rep = run(ts, ShareMode::kLockFree, max_window * 2000, 12,
                       usec(40), s, 0.0);
  EXPECT_GT(rep.counted_jobs, 2000);
  EXPECT_DOUBLE_EQ(rep.cmr(), 1.0);
  const auto band = analysis::lockfree_aur_bounds(ts, s);
  EXPECT_GE(rep.aur(), band.lower - 1e-9);
  EXPECT_LE(rep.aur(), band.upper + 1e-9);
}

TEST(Integration, HeadlineShapeLockFreeBeatsLockBasedUnderContention) {
  // The paper's core claim at miniature scale, as a guard against
  // regressions in any module: heavy sharing + overload -> lock-free
  // RUA accrues strictly more utility than lock-based RUA.
  workload::WorkloadSpec spec;
  spec.task_count = 10;
  spec.object_count = 10;
  spec.accesses_per_job = 10;
  spec.load = 1.1;
  spec.seed = 42;
  const TaskSet ts = workload::make_task_set(spec);
  const auto lf = run(ts, ShareMode::kLockFree, msec(200), 7, usec(800),
                      nsec(500));
  const auto lb = run(ts, ShareMode::kLockBased, msec(200), 7, usec(800),
                      nsec(500));
  EXPECT_GT(lf.aur(), lb.aur() + 0.2);
  EXPECT_GT(lf.cmr(), lb.cmr() + 0.2);
}

TEST(Integration, IdealDominatesLockFreeDominatesLockBased) {
  // Access costs only ever hurt: AUR(ideal) >= AUR(lock-free) >=
  // AUR(lock-based) for the same seeds and r >> s.
  workload::WorkloadSpec spec;
  spec.task_count = 8;
  spec.object_count = 6;
  spec.accesses_per_job = 4;
  spec.load = 1.0;
  spec.seed = 17;
  const TaskSet ts = workload::make_task_set(spec);
  const auto ideal = run(ts, ShareMode::kIdeal, msec(100), 2, usec(300),
                         usec(2));
  const auto lf = run(ts, ShareMode::kLockFree, msec(100), 2, usec(300),
                      usec(2));
  const auto lb = run(ts, ShareMode::kLockBased, msec(100), 2, usec(300),
                      usec(2));
  EXPECT_GE(ideal.aur() + 0.02, lf.aur());
  EXPECT_GE(lf.aur() + 0.02, lb.aur());
}

TEST(Integration, NestedWorkloadLongRunWithDetection) {
  // Random nested workloads under sustained load: deadlocks arise and
  // are resolved; the system never wedges and locks never leak.
  workload::WorkloadSpec spec;
  spec.task_count = 6;
  spec.object_count = 4;
  spec.nest_depth = 3;
  spec.load = 0.9;
  spec.seed = 9;
  const TaskSet ts = workload::make_task_set(spec);
  const auto rep = run(ts, ShareMode::kLockBased, msec(60), 11, usec(20),
                       usec(1), 5.0, /*detect=*/true);
  EXPECT_EQ(rep.completed + rep.aborted, rep.counted_jobs);
  for (const Job& j : rep.jobs) {
    // A job still mid-execution at the horizon may legitimately hold
    // locks; every *terminal* job must have released everything.
    if (!j.finished()) continue;
    EXPECT_TRUE(j.held_stack.empty()) << "job " << j.id << " leaked";
    EXPECT_EQ(j.held_object, kNoObject);
  }
  // Utility still flows despite cycles.
  EXPECT_GT(rep.aur(), 0.5);
}

}  // namespace
}  // namespace lfrt
