// Shared helpers for the figure-regeneration benches.
//
// Every bench prints: the experiment id, all parameters (including
// seeds, so rows are exactly regenerable), a human-readable table, and a
// trailing CSV block for plotting.
//
// Parallel regeneration: every (sweep-point × repeat) cell is an
// independent, seed-determined simulation, so the helpers below fan the
// cells out over exp::ThreadPool and reduce the results on the calling
// thread in deterministic cell order.  Stdout is therefore byte-
// identical for --threads=1 and --threads=N (see tests/
// determinism_test.cpp); only wall-clock changes.  Call bench::init at
// the top of main to honour --threads=N / LFRT_THREADS (default: all
// hardware threads).
//
// Default access-time parameters (overridable per bench via argv):
//   s = 500 ns   (lock-free queue op, cf. measured values in fig08)
//   r = 50 us    (lock-based op incl. the RUA resource-management
//                 invocation each lock/unlock request triggers; the
//                 paper's meta-scheduler r is of the same order relative
//                 to its 30-1000 us job execution times)
//   sched_ns_per_op = 5  (scheduler overhead charge per counted op)
#pragma once

#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exp/sweep.hpp"
#include "exp/thread_pool.hpp"
#include "sched/edf.hpp"
#include "sched/rua.hpp"
#include "sim/simulator.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "workload/workload.hpp"

namespace lfrt::bench {

inline constexpr Time kDefaultS = nsec(500);
inline constexpr Time kDefaultR = usec(50);
inline constexpr double kDefaultNsPerOp = 5.0;

// ---- thread-pool plumbing -------------------------------------------

namespace detail {
inline std::unique_ptr<exp::ThreadPool>& pool_slot() {
  static std::unique_ptr<exp::ThreadPool> slot;
  return slot;
}
}  // namespace detail

/// Configure the bench's pool from --threads=N / LFRT_THREADS.  Call
/// once at the top of main, before the first sweep.  The banner goes to
/// stderr so stdout stays byte-identical across thread counts.
inline void init(int argc, const char* const* argv) {
  const int threads = exp::threads_from_args(argc, argv);
  detail::pool_slot() = std::make_unique<exp::ThreadPool>(threads);
  if (threads > 1) std::cerr << "[bench] threads=" << threads << "\n";
}

/// The process-wide bench pool (default-sized if init was never called).
inline exp::ThreadPool& pool() {
  if (!detail::pool_slot())
    detail::pool_slot() =
        std::make_unique<exp::ThreadPool>(exp::default_threads());
  return *detail::pool_slot();
}

// ---- series running --------------------------------------------------

/// Mean and 95% CI of AUR and CMR over repeated runs (the paper reports
/// every data point with a 95% confidence error bar).
struct SeriesPoint {
  double aur_mean = 0.0, aur_ci = 0.0;
  double cmr_mean = 0.0, cmr_ci = 0.0;
  double retries_per_job = 0.0;
  double blockings_per_job = 0.0;
  std::int64_t jobs = 0;
  // Sums over the series' repeats (simulator-side accounting, used by
  // the ablation benches).
  std::int64_t aborted = 0;
  std::int64_t deadlocks = 0;
  std::int64_t sched_invocations = 0;
  std::int64_t sched_ops = 0;
  Time sched_overhead = 0;
};

struct RunParams {
  sim::ShareMode mode = sim::ShareMode::kLockFree;
  Time r = kDefaultR;
  Time s = kDefaultS;
  double ns_per_op = kDefaultNsPerOp;
  Time horizon = 0;           ///< 0: auto (windows_per_run windows)
  int windows_per_run = 200;  ///< horizon = max W_i * windows_per_run
  int repeats = 5;
  std::uint64_t arrival_seed = 1000;

  /// Arrival pattern: phase-jittered periodic (exact a_i/W_i rate, so
  /// the generated load equals the configured AL) or gate-thinned
  /// random (shape-stressing, slightly below the configured AL).
  bool periodic_arrivals = true;

  /// Scheduler override (e.g. EDF, or RUA with deadlock detection).
  /// nullptr: scheduler_for(mode).  The pointee must outlive the run
  /// and its build_into must be const-thread-safe (see scheduler_for).
  const sched::Scheduler* scheduler = nullptr;
};

/// Scheduler paired with a sharing mode: RUA/lock-based for kLockBased,
/// RUA/lock-free otherwise (the "ideal" yardstick also runs lock-free
/// RUA — it differs only in zero-cost object accesses).
///
/// The returned instances are shared by every simulation cell of every
/// worker thread.  That is safe because Scheduler::build_into is const
/// and keeps all scratch in the caller-owned Workspace (each Simulator
/// owns its own) — the contract documented in sched/scheduler.hpp and
/// enforced under TSan by tests/concurrent_build_test.cpp.
inline const sched::Scheduler& scheduler_for(sim::ShareMode mode) {
  static const sched::RuaScheduler lb(sched::Sharing::kLockBased);
  static const sched::RuaScheduler lf(sched::Sharing::kLockFree);
  return mode == sim::ShareMode::kLockBased
             ? static_cast<const sched::Scheduler&>(lb)
             : static_cast<const sched::Scheduler&>(lf);
}

/// Build the simulator for one (series, repeat) cell exactly as the
/// serial harness always has: per-cell seed = arrival_seed + repeat,
/// per-task RNGs mixed from it.
inline sim::Simulator make_cell_sim(const TaskSet& ts, const RunParams& rp,
                                    int rep) {
  Time max_window = 0;
  for (const auto& t : ts.tasks)
    max_window = std::max(max_window, t.arrival.window);

  sim::SimConfig cfg;
  cfg.mode = rp.mode;
  cfg.lock_access_time = rp.r;
  cfg.lockfree_access_time = rp.s;
  cfg.sched_ns_per_op = rp.ns_per_op;
  cfg.horizon =
      rp.horizon > 0 ? rp.horizon : max_window * rp.windows_per_run;
  const sched::Scheduler& sch =
      rp.scheduler != nullptr ? *rp.scheduler : scheduler_for(rp.mode);
  sim::Simulator s(ts, sch, cfg);
  const std::uint64_t seed =
      rp.arrival_seed + static_cast<std::uint64_t>(rep);
  if (rp.periodic_arrivals) {
    for (const auto& t : ts.tasks) {
      Rng rng(seed ^
              (0xA5A5A5A5ULL * static_cast<std::uint64_t>(t.id + 1)));
      s.set_arrivals(t.id,
                     arrivals::periodic_phased(t.arrival, cfg.horizon, rng));
    }
  } else {
    s.seed_arrivals(seed);
  }
  return s;
}

/// Run one cell to its full report (per-job records included).
inline sim::SimReport run_cell(const TaskSet& ts, const RunParams& rp,
                               int rep) {
  return make_cell_sim(ts, rp, rep).run();
}

/// Reduce one series' per-repeat reports, in repeat order, to the
/// aggregate point.  Pure and order-fixed: the reduction is identical
/// however the cells were computed.
inline SeriesPoint reduce_cells(const sim::SimReport* cells,
                                std::size_t count) {
  RunningStats aur, cmr;
  SeriesPoint p;
  std::int64_t retries = 0, blockings = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const sim::SimReport& rep_out = cells[i];
    aur.add(rep_out.aur());
    cmr.add(rep_out.cmr());
    retries += rep_out.total_retries;
    blockings += rep_out.total_blockings;
    p.jobs += rep_out.counted_jobs;
    p.aborted += rep_out.aborted;
    p.deadlocks += rep_out.deadlocks_resolved;
    p.sched_invocations += rep_out.sched_invocations;
    p.sched_ops += rep_out.sched_ops;
    p.sched_overhead += rep_out.sched_overhead;
  }
  p.aur_mean = aur.mean();
  p.aur_ci = aur.ci95();
  p.cmr_mean = cmr.mean();
  p.cmr_ci = cmr.ci95();
  p.retries_per_job =
      p.jobs > 0
          ? static_cast<double>(retries) / static_cast<double>(p.jobs)
          : 0.0;
  p.blockings_per_job =
      p.jobs > 0
          ? static_cast<double>(blockings) / static_cast<double>(p.jobs)
          : 0.0;
  return p;
}

/// One sweep point: a task set plus its run parameters (`repeats`
/// cells).
struct SeriesSpec {
  TaskSet ts;
  RunParams rp;
};

/// Run a batch of series with every (series × repeat) cell fanned out
/// over the pool, reduced per series in repeat order.  Results are in
/// series order and byte-identical at any pool size.
inline std::vector<SeriesPoint> run_series_batch(
    exp::ThreadPool& pool, const std::vector<SeriesSpec>& series) {
  struct Cell {
    std::size_t series = 0;
    int rep = 0;
  };
  std::vector<Cell> cells;
  for (std::size_t si = 0; si < series.size(); ++si)
    for (int rep = 0; rep < series[si].rp.repeats; ++rep)
      cells.push_back({si, rep});

  const std::vector<sim::SimReport> reports =
      exp::sweep(pool, cells, [&](const Cell& c) {
        return run_cell(series[c.series].ts, series[c.series].rp, c.rep);
      });

  std::vector<SeriesPoint> points;
  points.reserve(series.size());
  std::size_t at = 0;
  for (const SeriesSpec& s : series) {
    const auto n = static_cast<std::size_t>(s.rp.repeats);
    points.push_back(reduce_cells(reports.data() + at, n));
    at += n;
  }
  return points;
}

/// Run `repeats` simulations of the task set with fresh arrival seeds
/// and aggregate AUR/CMR statistics.  Repeats are fanned out over the
/// bench pool.
inline SeriesPoint run_series(const TaskSet& ts, const RunParams& rp) {
  return run_series_batch(pool(), {{ts, rp}}).front();
}

/// Critical time-Miss Load (Section 6.1): the largest approximate load
/// AL on a sweep grid at which the scheduler still misses (essentially)
/// no critical times.  `make_spec` maps an AL to a workload spec.
///
/// The whole grid is evaluated speculatively in parallel, then the cut
/// is applied in grid order: CML is the last point of the initial
/// consecutive passing run — the same value the serial early-break loop
/// produced.  The speculative tail also makes the "misses only grow
/// with load" assumption auditable: any later point that would have
/// passed after the first miss is logged to stderr.
template <typename MakeSpec>
double measure_cml(exp::ThreadPool& pool, MakeSpec&& make_spec,
                   const RunParams& rp, double al_step = 0.05,
                   double al_max = 1.3, double miss_tolerance = 0.001) {
  std::vector<double> grid;
  for (double al = al_step; al <= al_max + 1e-9; al += al_step)
    grid.push_back(al);

  std::vector<SeriesSpec> series;
  series.reserve(grid.size());
  for (const double al : grid)
    series.push_back({workload::make_task_set(make_spec(al)), rp});
  const std::vector<SeriesPoint> points = run_series_batch(pool, series);

  double cml = 0.0;
  std::size_t first_miss = grid.size();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (1.0 - points[i].cmr_mean <= miss_tolerance)
      cml = grid[i];
    else {
      first_miss = i;
      break;
    }
  }
  for (std::size_t i = first_miss + 1; i < grid.size(); ++i) {
    if (1.0 - points[i].cmr_mean <= miss_tolerance)
      std::cerr << "[measure_cml] audit: AL=" << grid[i]
                << " passes after the first miss at AL=" << grid[first_miss]
                << " (CMR " << points[i].cmr_mean
                << ") — the monotone-miss cut under-reports CML\n";
  }
  return cml;
}

/// Back-compat form on the bench pool.
template <typename MakeSpec>
double measure_cml(MakeSpec&& make_spec, const RunParams& rp,
                   double al_step = 0.05, double al_max = 1.3,
                   double miss_tolerance = 0.001) {
  return measure_cml(pool(), std::forward<MakeSpec>(make_spec), rp,
                     al_step, al_max, miss_tolerance);
}

/// Print the standard bench header.
inline void print_header(const std::string& id, const std::string& what) {
  std::cout << "=== " << id << " — " << what << " ===\n";
}

}  // namespace lfrt::bench
