file(REMOVE_RECURSE
  "CMakeFiles/lfrt_sched.dir/edf.cpp.o"
  "CMakeFiles/lfrt_sched.dir/edf.cpp.o.d"
  "CMakeFiles/lfrt_sched.dir/edf_pip.cpp.o"
  "CMakeFiles/lfrt_sched.dir/edf_pip.cpp.o.d"
  "CMakeFiles/lfrt_sched.dir/llf.cpp.o"
  "CMakeFiles/lfrt_sched.dir/llf.cpp.o.d"
  "CMakeFiles/lfrt_sched.dir/rua.cpp.o"
  "CMakeFiles/lfrt_sched.dir/rua.cpp.o.d"
  "liblfrt_sched.a"
  "liblfrt_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfrt_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
